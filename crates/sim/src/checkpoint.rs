//! Crash-safe, versioned checkpoint/restore of complete engine state.
//!
//! A [`Snapshot`] captures everything the engine needs to resume a run
//! bit-identically: the slot counter, per-node RNG stream positions,
//! every queue FIFO, the in-flight calendar ring, the active-flow slab
//! (including free-slot reuse order), pending flows, fault/failure
//! state, and the full metrics. `run(0..N)` and
//! `run(0..k); checkpoint; restore; run(k..N)` produce identical
//! metrics, trace bytes, and recorder contents at any
//! `SimConfig::engine_threads` — checkpointing inherits the engine's
//! determinism contract instead of weakening it.
//!
//! ## On-disk format
//!
//! A checkpoint file is a fixed header followed by length-prefixed,
//! individually checksummed sections:
//!
//! ```text
//! magic "SORNCKPT" | version u32 | section count u32
//! per section: tag [u8;4] | payload len u64 | payload | crc64 u64
//! ```
//!
//! Sections appear in a fixed order (`CFG`, `TIME`, `RNG`, `QUE`,
//! `CAL`, `FLW`, `FLT`, `MET`, `BLB`); every integer is little-endian;
//! the CRC is CRC-64/XZ (reflected ECMA-182) over the payload bytes.
//! The decoder is fully bounds-checked and never panics on hostile
//! input: truncation, bit flips, and forged lengths all surface as
//! [`CheckpointError::Corrupt`].
//!
//! ## Durability
//!
//! [`CheckpointStore`] writes each generation to a temp file, fsyncs
//! it, atomically renames it into place, and fsyncs the directory, so a
//! crash mid-write never damages the previous good generation. The last
//! `K = 2` generations are kept; [`CheckpointStore::load_latest`] falls
//! back to an older generation when the newest fails its checksums. The
//! filesystem is injectable ([`CheckpointFs`]) so the fault-injection
//! harness ([`CheckpointFaultFs`]) can simulate torn writes, silent
//! corruption, and rename failures without touching a real disk.

use crate::cell::{Cell, Flow, FlowId};
use crate::config::SimConfig;
use crate::engine::{ActiveFlow, Arrival, EpisodeState};
use crate::fault::{FaultAction, FaultEvent, FaultTarget};
use crate::metrics::{FlowRecord, LatencyHistogram, LinkMatrix, Metrics};
use sorn_topology::NodeId;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// File magic: the first eight bytes of every checkpoint.
pub const MAGIC: &[u8; 8] = b"SORNCKPT";

/// Current format version. Bump on any layout change; the loader
/// rejects other versions outright rather than guessing. v2 appended
/// `Metrics::slots_skipped` to the MET section.
pub const FORMAT_VERSION: u32 = 2;

/// Generations [`CheckpointStore`] retains (current + one fallback).
pub const KEEP_GENERATIONS: usize = 2;

const SECTION_TAGS: [&[u8; 4]; 9] = [
    b"CFG\0", b"TIME", b"RNG\0", b"QUE\0", b"CAL\0", b"FLW\0", b"FLT\0", b"MET\0", b"BLB\0",
];

// ---------------------------------------------------------------------------
// CRC-64/XZ (reflected ECMA-182)
// ---------------------------------------------------------------------------

const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64/XZ of `bytes` (init `!0`, reflected, xorout `!0`).
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failure to encode, decode, write, or locate a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// What was being attempted (`"write"`, `"read"`, ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error text.
        error: String,
    },
    /// The bytes are not a valid checkpoint (truncated, bit-flipped,
    /// wrong magic/version, or internally inconsistent).
    Corrupt {
        /// Human-readable diagnosis.
        reason: String,
    },
    /// No generation in the directory could be loaded.
    NoValidCheckpoint {
        /// The directory searched.
        dir: PathBuf,
        /// Generations that were tried and rejected, newest first.
        skipped: Vec<(PathBuf, String)>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { op, path, error } => {
                write!(f, "checkpoint {op} {}: {error}", path.display())
            }
            CheckpointError::Corrupt { reason } => write!(f, "corrupt checkpoint: {reason}"),
            CheckpointError::NoValidCheckpoint { dir, skipped } => {
                write!(
                    f,
                    "no valid checkpoint in {} ({} candidate(s) rejected)",
                    dir.display(),
                    skipped.len()
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Failure to rebuild an engine from a structurally valid snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The schedule covers a different node count than the snapshot.
    NodeCountMismatch {
        /// Nodes in the snapshot.
        snapshot: usize,
        /// Nodes in the schedule handed to `restore`.
        schedule: usize,
    },
    /// The router declares different spray classes than the snapshot
    /// recorded — its queues would be meaningless.
    ClassMismatch {
        /// Class ids recorded in the snapshot.
        snapshot: Vec<u16>,
        /// Class ids the router declares.
        router: Vec<u16>,
    },
    /// The snapshot is internally inconsistent (decoded from bytes that
    /// passed checksums but describe an impossible engine state).
    Inconsistent {
        /// Human-readable diagnosis.
        reason: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::NodeCountMismatch { snapshot, schedule } => write!(
                f,
                "snapshot covers {snapshot} nodes but the schedule covers {schedule}"
            ),
            RestoreError::ClassMismatch { snapshot, router } => write!(
                f,
                "snapshot recorded classes {snapshot:?} but the router declares {router:?}"
            ),
            RestoreError::Inconsistent { reason } => {
                write!(f, "inconsistent snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// One node's queue contents: nonempty FIFOs, front-to-back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct QueuesSnap {
    /// `(next-hop id, cells)` for nonempty specific queues, ascending.
    pub(crate) specific: Vec<(u32, Vec<Cell>)>,
    /// `(class id, cells)` for nonempty class queues, declaration order.
    pub(crate) class: Vec<(u16, Vec<Cell>)>,
}

/// A complete, self-contained capture of engine state at a slot
/// boundary.
///
/// Produced by `Engine::checkpoint`, consumed by `Engine::restore` (and
/// friends), serialized with [`Snapshot::to_bytes`] /
/// [`Snapshot::from_bytes`]. Carries opaque named blobs so run drivers
/// can persist probe state (trace collectors, flight recorders)
/// alongside the engine.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) cfg: SimConfig,
    pub(crate) n: u64,
    pub(crate) slot: u64,
    pub(crate) class_ids: Vec<u16>,
    pub(crate) rng_states: Vec<u64>,
    pub(crate) queues: Vec<QueuesSnap>,
    pub(crate) queued_cells: u64,
    pub(crate) cal_delay_slots: u64,
    pub(crate) cal_head_slot: u64,
    pub(crate) cal_stamps: Vec<u64>,
    pub(crate) cal_buckets: Vec<Vec<Arrival>>,
    /// Pending flows in ascending original-key order; restore renumbers
    /// them `0..m`, preserving the arrival heap's tie-break order.
    pub(crate) future: Vec<Flow>,
    pub(crate) injecting: Vec<Vec<u64>>,
    pub(crate) active: Vec<Option<ActiveFlow>>,
    pub(crate) active_free: Vec<u64>,
    pub(crate) failed_nodes: Vec<u32>,
    pub(crate) failed_links: Vec<(u32, u32)>,
    pub(crate) failure_epoch: u64,
    pub(crate) fault_events: Vec<FaultEvent>,
    pub(crate) fault_cursor: u64,
    pub(crate) episode: EpisodeState,
    pub(crate) metrics: Metrics,
    pub(crate) blobs: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// The slot the engine had completed when this snapshot was taken.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Nodes in the captured network.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// The configuration the run was using. A restored engine reuses it
    /// verbatim (modulo [`Snapshot::set_engine_threads`]).
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// Overrides the engine-thread count for the resumed run. Results
    /// are bit-identical at any count (the engine's determinism
    /// contract), so resuming on different hardware is safe.
    pub fn set_engine_threads(&mut self, threads: usize) {
        self.cfg.engine_threads = threads.max(1);
    }

    /// Attaches (or replaces) a named opaque blob — run drivers persist
    /// probe state (trace events, recorder rings) this way so a resumed
    /// process reproduces observability output byte-for-byte.
    pub fn attach_blob(&mut self, name: &str, bytes: Vec<u8>) {
        if let Some(slot) = self.blobs.iter_mut().find(|(k, _)| k == name) {
            slot.1 = bytes;
        } else {
            self.blobs.push((name.to_string(), bytes));
        }
    }

    /// A named blob's contents, if attached.
    pub fn blob(&self, name: &str) -> Option<&[u8]> {
        self.blobs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Serializes the snapshot into the versioned, checksummed binary
    /// format described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let sections = [
            self.encode_cfg(),
            self.encode_time(),
            self.encode_rng(),
            self.encode_queues(),
            self.encode_calendar(),
            self.encode_flows(),
            self.encode_faults(),
            self.encode_metrics(),
            self.encode_blobs(),
        ];
        let mut out = Vec::with_capacity(64 + sections.iter().map(|s| s.len() + 24).sum::<usize>());
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u32(&mut out, sections.len() as u32);
        for (tag, payload) in SECTION_TAGS.iter().zip(sections.iter()) {
            out.extend_from_slice(*tag);
            put_u64(&mut out, payload.len() as u64);
            out.extend_from_slice(payload);
            put_u64(&mut out, crc64(payload));
        }
        out
    }

    /// Decodes a snapshot, verifying the magic, version, section
    /// structure, and every section checksum. Never panics: any
    /// truncation, bit flip, or forged length yields
    /// [`CheckpointError::Corrupt`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
        decode_snapshot(bytes).map_err(|reason| CheckpointError::Corrupt { reason })
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            put_u8(out, 1);
            put_u64(out, x);
        }
        None => put_u8(out, 0),
    }
}

fn put_cell(out: &mut Vec<u8>, c: &Cell) {
    put_u64(out, c.flow.0);
    put_u64(out, c.seq);
    put_u32(out, c.src.0);
    put_u32(out, c.dst.0);
    put_u64(out, c.injected_ns);
    put_u8(out, c.hops);
    put_u16(out, c.tag);
}

fn put_flow(out: &mut Vec<u8>, f: &Flow) {
    put_u64(out, f.id.0);
    put_u32(out, f.src.0);
    put_u32(out, f.dst.0);
    put_u64(out, f.size_bytes);
    put_u64(out, f.arrival_ns);
}

impl Snapshot {
    fn encode_cfg(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let c = &self.cfg;
        put_u64(&mut out, c.slot_ns);
        put_u64(&mut out, c.propagation_ns);
        put_u64(&mut out, c.uplinks as u64);
        put_u32(&mut out, c.cell_bytes);
        put_u64(&mut out, c.seed);
        put_u8(&mut out, c.max_hops);
        put_u64(&mut out, c.class_scan_limit as u64);
        put_u64(&mut out, c.node_queue_cap as u64);
        put_u64(&mut out, c.engine_threads as u64);
        put_u64(&mut out, c.trace_one_in);
        put_u64(&mut out, c.checkpoint_every_slots);
        put_u64(&mut out, self.n);
        put_u64(&mut out, self.class_ids.len() as u64);
        for &c in &self.class_ids {
            put_u16(&mut out, c);
        }
        out
    }

    fn encode_time(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.slot);
        put_u64(&mut out, self.queued_cells);
        put_u64(&mut out, self.failure_epoch);
        put_u64(&mut out, self.fault_cursor);
        put_u64(&mut out, self.episode.onset_queued as u64);
        put_bool(&mut out, self.episode.degraded);
        put_opt_u64(&mut out, self.episode.awaiting_recovery_since);
        out
    }

    fn encode_rng(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 * self.rng_states.len());
        put_u64(&mut out, self.rng_states.len() as u64);
        for &s in &self.rng_states {
            put_u64(&mut out, s);
        }
        out
    }

    fn encode_queues(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.queues.len() as u64);
        for q in &self.queues {
            put_u64(&mut out, q.specific.len() as u64);
            for (next, cells) in &q.specific {
                put_u32(&mut out, *next);
                put_u64(&mut out, cells.len() as u64);
                for c in cells {
                    put_cell(&mut out, c);
                }
            }
            put_u64(&mut out, q.class.len() as u64);
            for (class, cells) in &q.class {
                put_u16(&mut out, *class);
                put_u64(&mut out, cells.len() as u64);
                for c in cells {
                    put_cell(&mut out, c);
                }
            }
        }
        out
    }

    fn encode_calendar(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.cal_delay_slots);
        put_u64(&mut out, self.cal_head_slot);
        put_u64(&mut out, self.cal_stamps.len() as u64);
        for &s in &self.cal_stamps {
            put_u64(&mut out, s);
        }
        put_u64(&mut out, self.cal_buckets.len() as u64);
        for bucket in &self.cal_buckets {
            put_u64(&mut out, bucket.len() as u64);
            for a in bucket {
                put_u64(&mut out, a.at_ns);
                put_u32(&mut out, a.node.0);
                put_cell(&mut out, &a.cell);
            }
        }
        out
    }

    fn encode_flows(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.future.len() as u64);
        for f in &self.future {
            put_flow(&mut out, f);
        }
        put_u64(&mut out, self.injecting.len() as u64);
        for list in &self.injecting {
            put_u64(&mut out, list.len() as u64);
            for &idx in list {
                put_u64(&mut out, idx);
            }
        }
        put_u64(&mut out, self.active.len() as u64);
        for slot in &self.active {
            match slot {
                Some(af) => {
                    put_u8(&mut out, 1);
                    put_flow(&mut out, &af.flow);
                    put_u64(&mut out, af.total_cells);
                    put_u64(&mut out, af.injected);
                    put_u64(&mut out, af.delivered);
                    put_u8(&mut out, af.max_hops);
                }
                None => put_u8(&mut out, 0),
            }
        }
        put_u64(&mut out, self.active_free.len() as u64);
        for &idx in &self.active_free {
            put_u64(&mut out, idx);
        }
        out
    }

    fn encode_faults(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.failed_nodes.len() as u64);
        for &v in &self.failed_nodes {
            put_u32(&mut out, v);
        }
        put_u64(&mut out, self.failed_links.len() as u64);
        for &(a, b) in &self.failed_links {
            put_u32(&mut out, a);
            put_u32(&mut out, b);
        }
        put_u64(&mut out, self.fault_events.len() as u64);
        for e in &self.fault_events {
            put_u64(&mut out, e.at_ns);
            put_u8(&mut out, matches!(e.action, FaultAction::Restore) as u8);
            match e.target {
                FaultTarget::Node(v) => {
                    put_u8(&mut out, 0);
                    put_u32(&mut out, v.0);
                    put_u32(&mut out, 0);
                }
                FaultTarget::Link(a, b) => {
                    put_u8(&mut out, 1);
                    put_u32(&mut out, a.0);
                    put_u32(&mut out, b.0);
                }
                FaultTarget::LinkBidir(a, b) => {
                    put_u8(&mut out, 2);
                    put_u32(&mut out, a.0);
                    put_u32(&mut out, b.0);
                }
            }
        }
        out
    }

    fn encode_metrics(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let m = &self.metrics;
        put_u64(&mut out, m.slots);
        put_u64(&mut out, m.injected_cells);
        put_u64(&mut out, m.delivered_cells);
        put_u64(&mut out, m.delivered_bytes);
        put_u64(&mut out, m.transmissions);
        put_u64(&mut out, m.idle_circuit_slots);
        for &h in &m.hop_histogram {
            put_u64(&mut out, h);
        }
        put_u128(&mut out, m.cell_latency_sum_ns);
        let (buckets, count) = m.cell_latency.raw_parts();
        for &b in buckets {
            put_u64(&mut out, b);
        }
        put_u64(&mut out, count);
        put_u64(&mut out, m.flows.len() as u64);
        for f in &m.flows {
            put_u64(&mut out, f.id.0);
            put_u64(&mut out, f.size_bytes);
            put_u64(&mut out, f.arrival_ns);
            put_u64(&mut out, f.completion_ns);
            put_u8(&mut out, f.max_hops);
        }
        put_u64(&mut out, m.peak_queue_depth as u64);
        put_u64(&mut out, m.dropped_cells);
        put_u32(&mut out, m.link_transmissions.dim());
        put_u64(&mut out, m.link_transmissions.len() as u64);
        for ((src, dst), count) in m.link_transmissions.iter() {
            put_u32(&mut out, src);
            put_u32(&mut out, dst);
            put_u64(&mut out, count);
        }
        put_u64(&mut out, m.stranded_cells);
        put_u64(&mut out, m.failure_slots);
        put_u64(&mut out, m.failure_episodes);
        put_u64(&mut out, m.delivered_during_failure);
        put_u64(&mut out, m.recovery_times_ns.len() as u64);
        for &t in &m.recovery_times_ns {
            put_u64(&mut out, t);
        }
        put_u64(&mut out, m.slots_skipped);
        out
    }

    fn encode_blobs(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.blobs.len() as u64);
        for (name, bytes) in &self.blobs {
            put_u64(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            put_u64(&mut out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a byte slice. Every take
/// that would run past the end returns an error string; nothing ever
/// panics or over-allocates (element counts are sanity-capped against
/// the bytes actually remaining).
struct Cursor<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Cursor<'b> {
    fn new(buf: &'b [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], String> {
        if n > self.remaining() {
            return Err(format!(
                "truncated: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("bad bool byte {v}")),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            v => Err(format!("bad option byte {v}")),
        }
    }

    /// Reads an element count and rejects it when even `min_elem_bytes`
    /// per element would not fit in the remaining buffer — a forged
    /// count can therefore never drive a huge allocation.
    fn count(&mut self, what: &str, min_elem_bytes: usize) -> Result<usize, String> {
        let c = self.u64()?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if c > cap {
            return Err(format!("{what} count {c} exceeds the bytes remaining"));
        }
        Ok(c as usize)
    }

    fn cell(&mut self) -> Result<Cell, String> {
        Ok(Cell {
            flow: FlowId(self.u64()?),
            seq: self.u64()?,
            src: NodeId(self.u32()?),
            dst: NodeId(self.u32()?),
            injected_ns: self.u64()?,
            hops: self.u8()?,
            tag: self.u16()?,
        })
    }

    fn flow(&mut self) -> Result<Flow, String> {
        Ok(Flow {
            id: FlowId(self.u64()?),
            src: NodeId(self.u32()?),
            dst: NodeId(self.u32()?),
            size_bytes: self.u64()?,
            arrival_ns: self.u64()?,
        })
    }

    fn finish(&self, what: &str) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!(
                "{what}: {} trailing byte(s) after the last field",
                self.remaining()
            ));
        }
        Ok(())
    }
}

/// Byte size of an encoded [`Cell`].
const CELL_BYTES: usize = 35;
/// Byte size of an encoded [`Flow`].
const FLOW_BYTES: usize = 32;

fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, String> {
    let mut cur = Cursor::new(bytes);
    if cur.take(8)? != MAGIC {
        return Err("bad magic (not a SORN checkpoint)".to_string());
    }
    let version = cur.u32()?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    let sections = cur.u32()?;
    if sections as usize != SECTION_TAGS.len() {
        return Err(format!(
            "expected {} sections, header claims {sections}",
            SECTION_TAGS.len()
        ));
    }
    let mut payloads: Vec<&[u8]> = Vec::with_capacity(SECTION_TAGS.len());
    for want_tag in &SECTION_TAGS {
        let tag = cur.take(4)?;
        if tag != *want_tag {
            return Err(format!(
                "section tag {:?} where {:?} was expected",
                String::from_utf8_lossy(tag),
                String::from_utf8_lossy(*want_tag)
            ));
        }
        let len = cur.u64()?;
        if len > cur.remaining() as u64 {
            return Err(format!(
                "section {:?} claims {len} bytes, only {} remain",
                String::from_utf8_lossy(*want_tag),
                cur.remaining()
            ));
        }
        let payload = cur.take(len as usize)?;
        let want_crc = cur.u64()?;
        let got_crc = crc64(payload);
        if got_crc != want_crc {
            return Err(format!(
                "section {:?} checksum mismatch (stored {want_crc:016x}, computed {got_crc:016x})",
                String::from_utf8_lossy(*want_tag)
            ));
        }
        payloads.push(payload);
    }
    cur.finish("checkpoint")?;

    let (cfg, n, class_ids) = decode_cfg(payloads[0])?;
    let time = decode_time(payloads[1])?;
    let rng_states = decode_rng(payloads[2])?;
    let queues = decode_queues(payloads[3])?;
    let cal = decode_calendar(payloads[4])?;
    let flows = decode_flows(payloads[5])?;
    let faults = decode_faults(payloads[6])?;
    let metrics = decode_metrics(payloads[7])?;
    let blobs = decode_blobs(payloads[8])?;

    Ok(Snapshot {
        cfg,
        n,
        slot: time.0,
        class_ids,
        rng_states,
        queues,
        queued_cells: time.1,
        cal_delay_slots: cal.0,
        cal_head_slot: cal.1,
        cal_stamps: cal.2,
        cal_buckets: cal.3,
        future: flows.0,
        injecting: flows.1,
        active: flows.2,
        active_free: flows.3,
        failed_nodes: faults.0,
        failed_links: faults.1,
        failure_epoch: time.2,
        fault_events: faults.2,
        fault_cursor: time.3,
        episode: EpisodeState {
            onset_queued: time.4 as usize,
            degraded: time.5,
            awaiting_recovery_since: time.6,
        },
        metrics,
        blobs,
    })
}

fn decode_cfg(payload: &[u8]) -> Result<(SimConfig, u64, Vec<u16>), String> {
    let mut c = Cursor::new(payload);
    let cfg = SimConfig {
        slot_ns: c.u64()?,
        propagation_ns: c.u64()?,
        uplinks: c.u64()? as usize,
        cell_bytes: c.u32()?,
        seed: c.u64()?,
        max_hops: c.u8()?,
        class_scan_limit: c.u64()? as usize,
        node_queue_cap: c.u64()? as usize,
        engine_threads: (c.u64()? as usize).max(1),
        trace_one_in: c.u64()?,
        checkpoint_every_slots: c.u64()?,
    };
    if cfg.slot_ns == 0 {
        return Err("CFG: slot_ns is zero".to_string());
    }
    let n = c.u64()?;
    let classes = c.count("CFG classes", 2)?;
    let mut class_ids = Vec::with_capacity(classes);
    for _ in 0..classes {
        class_ids.push(c.u16()?);
    }
    c.finish("CFG")?;
    Ok((cfg, n, class_ids))
}

#[allow(clippy::type_complexity)]
fn decode_time(payload: &[u8]) -> Result<(u64, u64, u64, u64, u64, bool, Option<u64>), String> {
    let mut c = Cursor::new(payload);
    let out = (
        c.u64()?,
        c.u64()?,
        c.u64()?,
        c.u64()?,
        c.u64()?,
        c.bool()?,
        c.opt_u64()?,
    );
    c.finish("TIME")?;
    Ok(out)
}

fn decode_rng(payload: &[u8]) -> Result<Vec<u64>, String> {
    let mut c = Cursor::new(payload);
    let count = c.count("RNG states", 8)?;
    let mut states = Vec::with_capacity(count);
    for _ in 0..count {
        states.push(c.u64()?);
    }
    c.finish("RNG")?;
    Ok(states)
}

fn decode_queues(payload: &[u8]) -> Result<Vec<QueuesSnap>, String> {
    let mut c = Cursor::new(payload);
    let nodes = c.count("QUE nodes", 16)?;
    let mut queues = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let spec = c.count("QUE specific FIFOs", 12)?;
        let mut specific = Vec::with_capacity(spec);
        for _ in 0..spec {
            let next = c.u32()?;
            let cells = c.count("QUE specific cells", CELL_BYTES)?;
            let mut v = Vec::with_capacity(cells);
            for _ in 0..cells {
                v.push(c.cell()?);
            }
            specific.push((next, v));
        }
        let cls = c.count("QUE class FIFOs", 10)?;
        let mut class = Vec::with_capacity(cls);
        for _ in 0..cls {
            let id = c.u16()?;
            let cells = c.count("QUE class cells", CELL_BYTES)?;
            let mut v = Vec::with_capacity(cells);
            for _ in 0..cells {
                v.push(c.cell()?);
            }
            class.push((id, v));
        }
        queues.push(QueuesSnap { specific, class });
    }
    c.finish("QUE")?;
    Ok(queues)
}

#[allow(clippy::type_complexity)]
fn decode_calendar(payload: &[u8]) -> Result<(u64, u64, Vec<u64>, Vec<Vec<Arrival>>), String> {
    let mut c = Cursor::new(payload);
    let delay_slots = c.u64()?;
    let head_slot = c.u64()?;
    let stamps_len = c.count("CAL stamps", 8)?;
    let mut stamps = Vec::with_capacity(stamps_len);
    for _ in 0..stamps_len {
        stamps.push(c.u64()?);
    }
    let buckets_len = c.count("CAL buckets", 8)?;
    let mut buckets = Vec::with_capacity(buckets_len);
    for _ in 0..buckets_len {
        let items = c.count("CAL arrivals", 12 + CELL_BYTES)?;
        let mut bucket = Vec::with_capacity(items);
        for _ in 0..items {
            bucket.push(Arrival {
                at_ns: c.u64()?,
                node: NodeId(c.u32()?),
                cell: c.cell()?,
            });
        }
        buckets.push(bucket);
    }
    c.finish("CAL")?;
    Ok((delay_slots, head_slot, stamps, buckets))
}

#[allow(clippy::type_complexity)]
fn decode_flows(
    payload: &[u8],
) -> Result<(Vec<Flow>, Vec<Vec<u64>>, Vec<Option<ActiveFlow>>, Vec<u64>), String> {
    let mut c = Cursor::new(payload);
    let pending = c.count("FLW pending flows", FLOW_BYTES)?;
    let mut future = Vec::with_capacity(pending);
    for _ in 0..pending {
        future.push(c.flow()?);
    }
    let nodes = c.count("FLW injecting lists", 8)?;
    let mut injecting = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let len = c.count("FLW injecting entries", 8)?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            list.push(c.u64()?);
        }
        injecting.push(list);
    }
    let slab = c.count("FLW active slab", 1)?;
    let mut active = Vec::with_capacity(slab);
    for _ in 0..slab {
        active.push(match c.u8()? {
            0 => None,
            1 => Some(ActiveFlow {
                flow: c.flow()?,
                total_cells: c.u64()?,
                injected: c.u64()?,
                delivered: c.u64()?,
                max_hops: c.u8()?,
            }),
            v => return Err(format!("FLW: bad slab slot byte {v}")),
        });
    }
    let free = c.count("FLW free list", 8)?;
    let mut active_free = Vec::with_capacity(free);
    for _ in 0..free {
        active_free.push(c.u64()?);
    }
    c.finish("FLW")?;
    Ok((future, injecting, active, active_free))
}

#[allow(clippy::type_complexity)]
fn decode_faults(payload: &[u8]) -> Result<(Vec<u32>, Vec<(u32, u32)>, Vec<FaultEvent>), String> {
    let mut c = Cursor::new(payload);
    let nodes = c.count("FLT failed nodes", 4)?;
    let mut failed_nodes = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        failed_nodes.push(c.u32()?);
    }
    let links = c.count("FLT failed links", 8)?;
    let mut failed_links = Vec::with_capacity(links);
    for _ in 0..links {
        failed_links.push((c.u32()?, c.u32()?));
    }
    let events = c.count("FLT events", 18)?;
    let mut fault_events = Vec::with_capacity(events);
    let mut last_at = 0u64;
    for _ in 0..events {
        let at_ns = c.u64()?;
        if at_ns < last_at {
            return Err("FLT: events out of time order".to_string());
        }
        last_at = at_ns;
        let action = match c.u8()? {
            0 => FaultAction::Fail,
            1 => FaultAction::Restore,
            v => return Err(format!("FLT: bad action byte {v}")),
        };
        let kind = c.u8()?;
        let a = NodeId(c.u32()?);
        let b = NodeId(c.u32()?);
        let target = match kind {
            0 => FaultTarget::Node(a),
            1 => FaultTarget::Link(a, b),
            2 => FaultTarget::LinkBidir(a, b),
            v => return Err(format!("FLT: bad target byte {v}")),
        };
        fault_events.push(FaultEvent {
            at_ns,
            action,
            target,
        });
    }
    c.finish("FLT")?;
    Ok((failed_nodes, failed_links, fault_events))
}

fn decode_metrics(payload: &[u8]) -> Result<Metrics, String> {
    let mut c = Cursor::new(payload);
    let mut m = Metrics {
        slots: c.u64()?,
        injected_cells: c.u64()?,
        delivered_cells: c.u64()?,
        delivered_bytes: c.u64()?,
        transmissions: c.u64()?,
        idle_circuit_slots: c.u64()?,
        ..Metrics::default()
    };
    for h in m.hop_histogram.iter_mut() {
        *h = c.u64()?;
    }
    m.cell_latency_sum_ns = c.u128()?;
    let mut buckets = [0u64; 64];
    for b in buckets.iter_mut() {
        *b = c.u64()?;
    }
    let count = c.u64()?;
    if count != buckets.iter().sum::<u64>() {
        return Err("MET: latency histogram count disagrees with buckets".to_string());
    }
    m.cell_latency = LatencyHistogram::from_raw_parts(buckets, count);
    let flows = c.count("MET flow records", 33)?;
    m.flows = Vec::with_capacity(flows);
    for _ in 0..flows {
        m.flows.push(FlowRecord {
            id: FlowId(c.u64()?),
            size_bytes: c.u64()?,
            arrival_ns: c.u64()?,
            completion_ns: c.u64()?,
            max_hops: c.u8()?,
        });
    }
    m.peak_queue_depth = c.u64()? as usize;
    m.dropped_cells = c.u64()?;
    let dim = c.u32()?;
    let links = c.count("MET link entries", 16)?;
    let mut matrix = LinkMatrix::with_nodes(dim as usize);
    for _ in 0..links {
        let src = c.u32()?;
        let dst = c.u32()?;
        let count = c.u64()?;
        if src >= dim || dst >= dim {
            return Err(format!("MET: link ({src},{dst}) outside dimension {dim}"));
        }
        if count == 0 {
            return Err(format!("MET: zero count stored for link ({src},{dst})"));
        }
        matrix.insert((src, dst), count);
    }
    m.link_transmissions = matrix;
    m.stranded_cells = c.u64()?;
    m.failure_slots = c.u64()?;
    m.failure_episodes = c.u64()?;
    m.delivered_during_failure = c.u64()?;
    let recov = c.count("MET recovery times", 8)?;
    m.recovery_times_ns = Vec::with_capacity(recov);
    for _ in 0..recov {
        m.recovery_times_ns.push(c.u64()?);
    }
    m.slots_skipped = c.u64()?;
    c.finish("MET")?;
    Ok(m)
}

fn decode_blobs(payload: &[u8]) -> Result<Vec<(String, Vec<u8>)>, String> {
    let mut c = Cursor::new(payload);
    let count = c.count("BLB blobs", 16)?;
    let mut blobs = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = c.count("BLB name", 1)?;
        let name = String::from_utf8(c.take(name_len)?.to_vec())
            .map_err(|_| "BLB: blob name is not UTF-8".to_string())?;
        let data_len = c.count("BLB data", 1)?;
        let data = c.take(data_len)?.to_vec();
        blobs.push((name, data));
    }
    c.finish("BLB")?;
    Ok(blobs)
}

// ---------------------------------------------------------------------------
// Filesystem abstraction
// ---------------------------------------------------------------------------

/// The filesystem operations [`CheckpointStore`] needs — injectable so
/// the torn-write fault harness can exercise every failure mode
/// in memory.
pub trait CheckpointFs {
    /// Writes `bytes` to `path` atomically: on success the file holds
    /// exactly `bytes`, and on failure any previous file at `path` is
    /// untouched. Real implementations go through a temp file, fsync,
    /// and rename.
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Reads a file completely.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Removes a file (pruning old generations).
    fn remove(&mut self, path: &Path) -> io::Result<()>;
    /// Lists the files in `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The real filesystem: write-to-temp + fsync + atomic rename +
/// directory fsync.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl CheckpointFs for StdFs {
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync is a
        // Unix-ism; elsewhere the rename alone is the best available.
        #[cfg(unix)]
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }
}

/// What the next [`CheckpointFaultFs::write_atomic`] call should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteFault {
    /// Behave normally.
    #[default]
    None,
    /// Simulate a crash mid-write: only the first `keep` bytes land on
    /// "disk" (at the final path, as if fsync was skipped and the
    /// kernel wrote a prefix), and the call reports an error.
    Torn {
        /// Bytes that survive.
        keep: usize,
    },
    /// Simulate silent media corruption: the write "succeeds" but the
    /// byte at `offset` is flipped.
    CorruptByte {
        /// Offset of the flipped byte (out-of-range = clean write).
        offset: usize,
    },
    /// Simulate a rename failure: nothing lands, any previous file at
    /// the path is untouched, and the call reports an error.
    FailRename,
}

/// An in-memory filesystem with one-shot fault injection, for the
/// self-test harness: torn writes, short writes, silent bit rot, and
/// rename failures, at any byte offset.
#[derive(Debug, Clone, Default)]
pub struct CheckpointFaultFs {
    files: BTreeMap<PathBuf, Vec<u8>>,
    fault: WriteFault,
}

impl CheckpointFaultFs {
    /// An empty in-memory filesystem with no fault armed.
    pub fn new() -> Self {
        CheckpointFaultFs::default()
    }

    /// Arms a fault for the *next* `write_atomic` call (one-shot; the
    /// call after it behaves normally).
    pub fn arm(&mut self, fault: WriteFault) {
        self.fault = fault;
    }

    /// Directly installs file contents (test setup, or simulating
    /// damage written by another process).
    pub fn put(&mut self, path: &Path, bytes: Vec<u8>) {
        self.files.insert(path.to_path_buf(), bytes);
    }

    /// A file's current contents.
    pub fn contents(&self, path: &Path) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }
}

impl CheckpointFs for CheckpointFaultFs {
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match std::mem::take(&mut self.fault) {
            WriteFault::None => {
                self.files.insert(path.to_path_buf(), bytes.to_vec());
                Ok(())
            }
            WriteFault::Torn { keep } => {
                let keep = keep.min(bytes.len());
                self.files
                    .insert(path.to_path_buf(), bytes[..keep].to_vec());
                Err(io::Error::other("simulated torn write (crash mid-write)"))
            }
            WriteFault::CorruptByte { offset } => {
                let mut v = bytes.to_vec();
                if let Some(b) = v.get_mut(offset) {
                    *b ^= 0xFF;
                }
                self.files.insert(path.to_path_buf(), v);
                Ok(())
            }
            WriteFault::FailRename => Err(io::Error::other("simulated rename failure")),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        self.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        Ok(self
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Generation store
// ---------------------------------------------------------------------------

/// A successful [`CheckpointStore::load_latest`].
#[derive(Debug)]
pub struct LoadOutcome {
    /// The loaded snapshot.
    pub snapshot: Snapshot,
    /// The generation file it came from.
    pub path: PathBuf,
    /// Newer generations that were rejected (corrupt) before this one
    /// loaded, newest first, with the rejection reason.
    pub skipped: Vec<(PathBuf, String)>,
}

/// Rotating on-disk checkpoint store: atomic generation writes, last-K
/// retention, and checksum-verified fallback on load.
#[derive(Debug)]
pub struct CheckpointStore<F: CheckpointFs = StdFs> {
    dir: PathBuf,
    fs: F,
    keep: usize,
}

impl CheckpointStore<StdFs> {
    /// Opens (creating if needed) a checkpoint directory on the real
    /// filesystem, keeping [`KEEP_GENERATIONS`] generations.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| CheckpointError::Io {
            op: "create dir",
            path: dir.clone(),
            error: e.to_string(),
        })?;
        Ok(CheckpointStore {
            dir,
            fs: StdFs,
            keep: KEEP_GENERATIONS,
        })
    }
}

impl<F: CheckpointFs> CheckpointStore<F> {
    /// A store over an injected filesystem (the fault harness).
    pub fn with_fs(dir: impl Into<PathBuf>, fs: F, keep: usize) -> Self {
        CheckpointStore {
            dir: dir.into(),
            fs,
            keep: keep.max(1),
        }
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Mutable access to the injected filesystem (arming faults).
    pub fn fs_mut(&mut self) -> &mut F {
        &mut self.fs
    }

    fn generation_of(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let rest = name.strip_prefix("ckpt-")?;
        let gen_str = rest.split('-').next()?;
        let stem_ok = name.ends_with(".sorn");
        if !stem_ok {
            return None;
        }
        gen_str.parse().ok()
    }

    /// Generation files present, ascending by generation number.
    fn generations(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut gens: Vec<(u64, PathBuf)> = self
            .fs
            .list(&self.dir)?
            .into_iter()
            .filter_map(|p| Self::generation_of(&p).map(|g| (g, p)))
            .collect();
        gens.sort();
        Ok(gens)
    }

    /// Writes `snapshot` as the next generation and prunes old ones
    /// down to the retention limit. Returns the new file's path and
    /// encoded size.
    pub fn write(&mut self, snapshot: &Snapshot) -> Result<(PathBuf, usize), CheckpointError> {
        let gens = self.generations().map_err(|e| CheckpointError::Io {
            op: "list",
            path: self.dir.clone(),
            error: e.to_string(),
        })?;
        let next_gen = gens.last().map_or(1, |(g, _)| g + 1);
        let path = self
            .dir
            .join(format!("ckpt-{next_gen:08}-slot{}.sorn", snapshot.slot()));
        let bytes = snapshot.to_bytes();
        self.fs
            .write_atomic(&path, &bytes)
            .map_err(|e| CheckpointError::Io {
                op: "write",
                path: path.clone(),
                error: e.to_string(),
            })?;
        // Prune: keep the newest `keep` generations including the one
        // just written. Prune failures are non-fatal (the checkpoint
        // itself landed) but surface as Io errors for visibility.
        let total = gens.len() + 1;
        if total > self.keep {
            for (_, old) in gens.iter().take(total - self.keep) {
                let _ = self.fs.remove(old);
            }
        }
        Ok((path, bytes.len()))
    }

    /// Loads the newest generation that passes every checksum, falling
    /// back to older generations when newer ones are corrupt. Never
    /// panics and never returns a partially-valid snapshot: the outcome
    /// is a fully decoded generation or a structured error listing what
    /// was rejected.
    pub fn load_latest(&self) -> Result<LoadOutcome, CheckpointError> {
        let mut gens = self.generations().map_err(|e| CheckpointError::Io {
            op: "list",
            path: self.dir.clone(),
            error: e.to_string(),
        })?;
        gens.reverse(); // newest first
        let mut skipped = Vec::new();
        for (_, path) in gens {
            let bytes = match self.fs.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push((path, format!("read failed: {e}")));
                    continue;
                }
            };
            match Snapshot::from_bytes(&bytes) {
                Ok(snapshot) => {
                    return Ok(LoadOutcome {
                        snapshot,
                        path,
                        skipped,
                    })
                }
                Err(e) => skipped.push((path, e.to_string())),
            }
        }
        Err(CheckpointError::NoValidCheckpoint {
            dir: self.dir.clone(),
            skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_the_reference_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    fn tiny_snapshot() -> Snapshot {
        Snapshot {
            cfg: SimConfig::default(),
            n: 2,
            slot: 7,
            class_ids: vec![0],
            rng_states: vec![1, 2],
            queues: vec![QueuesSnap::default(), QueuesSnap::default()],
            queued_cells: 0,
            cal_delay_slots: 6,
            cal_head_slot: 7,
            cal_stamps: vec![0; 7],
            cal_buckets: vec![Vec::new(); 7],
            future: vec![],
            injecting: vec![vec![], vec![]],
            active: vec![],
            active_free: vec![],
            failed_nodes: vec![],
            failed_links: vec![],
            failure_epoch: 0,
            fault_events: vec![],
            fault_cursor: 0,
            episode: EpisodeState::default(),
            metrics: Metrics {
                link_transmissions: LinkMatrix::with_nodes(2),
                ..Metrics::default()
            },
            blobs: vec![("probe".to_string(), vec![1, 2, 3])],
        }
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let snap = tiny_snapshot();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.slot(), 7);
        assert_eq!(back.n(), 2);
        assert_eq!(back.rng_states, vec![1, 2]);
        assert_eq!(back.blob("probe"), Some(&[1u8, 2, 3][..]));
        assert_eq!(back.to_bytes(), bytes, "re-encoding is byte-stable");
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let bytes = tiny_snapshot().to_bytes();
        for len in 0..bytes.len() {
            let r = Snapshot::from_bytes(&bytes[..len]);
            assert!(r.is_err(), "prefix of {len} bytes must not decode");
        }
    }

    #[test]
    fn every_byte_flip_is_a_clean_error() {
        let bytes = tiny_snapshot().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            // Must not panic; must not silently decode damaged state.
            let r = Snapshot::from_bytes(&bad);
            assert!(r.is_err(), "flip at offset {i} must be detected");
        }
    }

    #[test]
    fn forged_section_length_cannot_over_allocate() {
        let mut bytes = tiny_snapshot().to_bytes();
        // Forge the first section's length to an absurd value.
        let len_off = 8 + 4 + 4 + 4; // magic + version + count + tag
        bytes[len_off..len_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Snapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn store_rotates_and_falls_back_on_corruption() {
        let dir = PathBuf::from("/mem");
        let mut store = CheckpointStore::with_fs(&dir, CheckpointFaultFs::new(), 2);
        let mut snap = tiny_snapshot();
        snap.slot = 10;
        store.write(&snap).expect("gen 1");
        snap.slot = 20;
        let (newest, _) = store.write(&snap).expect("gen 2");
        // Corrupt the newest generation in place.
        let mut bytes = store.fs_mut().read(&newest).expect("read back");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        store.fs_mut().put(&newest, bytes);
        let out = store.load_latest().expect("fallback generation loads");
        assert_eq!(out.snapshot.slot(), 10, "older generation wins");
        assert_eq!(out.skipped.len(), 1);
    }

    #[test]
    fn store_keeps_only_k_generations() {
        let dir = PathBuf::from("/mem");
        let mut store = CheckpointStore::with_fs(&dir, CheckpointFaultFs::new(), 2);
        let mut snap = tiny_snapshot();
        for slot in [10, 20, 30] {
            snap.slot = slot;
            store.write(&snap).expect("write");
        }
        let listed = store.fs_mut().list(&dir).expect("list");
        assert_eq!(listed.len(), 2, "retention prunes to K=2");
        let out = store.load_latest().expect("latest");
        assert_eq!(out.snapshot.slot(), 30);
    }

    #[test]
    fn empty_store_reports_no_checkpoint() {
        let store = CheckpointStore::with_fs("/mem", CheckpointFaultFs::new(), 2);
        match store.load_latest() {
            Err(CheckpointError::NoValidCheckpoint { skipped, .. }) => {
                assert!(skipped.is_empty())
            }
            other => panic!("expected NoValidCheckpoint, got {other:?}"),
        }
    }

    #[test]
    fn torn_write_leaves_previous_generation_loadable() {
        let dir = PathBuf::from("/mem");
        let mut store = CheckpointStore::with_fs(&dir, CheckpointFaultFs::new(), 2);
        let mut snap = tiny_snapshot();
        snap.slot = 10;
        store.write(&snap).expect("good write");
        let full_len = snap.to_bytes().len();
        // Tear the next write at every byte offset; the previous
        // generation must stay loadable every time, with no panic.
        for keep in 0..full_len {
            snap.slot = 99;
            store.fs_mut().arm(WriteFault::Torn { keep });
            let _ = store.write(&snap); // reports an error; ignore
            let out = store.load_latest().expect("previous generation");
            assert_eq!(out.snapshot.slot(), 10, "torn at {keep}");
        }
    }
}
