//! # sorn-sim
//!
//! A deterministic, slot-synchronous packet (cell) simulator for
//! reconfigurable datacenter networks.
//!
//! Fast circuit-switched fabrics (Sirius, RotorNet, SORN) advance in fixed
//! time slots: in each slot every node's uplinks are connected to peers
//! given by a periodic [`sorn_topology::CircuitSchedule`], and one cell
//! can cross each circuit. This crate simulates that model end to end:
//! flow arrivals, line-rate injection, per-next-hop virtual output queues
//! with router-defined spray classes, propagation delay, failure
//! injection, and full metrics (flow completion times, hop counts,
//! bandwidth tax, utilization).
//!
//! Routing is pluggable through the [`Router`] trait; the schemes from the
//! paper (2-hop VLB, h-dimensional ORN routing, SORN's intra/inter-clique
//! routing) live in the `sorn-routing` crate.
//!
//! ## Example
//!
//! ```
//! use sorn_sim::{Engine, SimConfig, Flow, FlowId, DirectRouter};
//! use sorn_topology::{builders::round_robin, NodeId};
//!
//! let schedule = round_robin(8).unwrap();
//! let router = DirectRouter;
//! let mut engine = Engine::new(SimConfig::default(), &schedule, &router);
//! engine.add_flows([Flow {
//!     id: FlowId(1),
//!     src: NodeId(0),
//!     dst: NodeId(5),
//!     size_bytes: 5000,
//!     arrival_ns: 0,
//! }]).unwrap();
//! assert!(engine.run_until_drained(1_000).unwrap());
//! assert_eq!(engine.metrics().flows.len(), 1);
//! ```

#![warn(missing_docs)]

mod calendar;
mod cell;
mod checkpoint;
mod config;
mod engine;
mod failure;
mod fault;
mod flow_table;
mod hash;
pub mod macroflow;
mod metrics;
mod par;
mod probe;
mod profiler;
mod queues;
mod rng;
mod router;
mod trace;

pub use cell::{Cell, Flow, FlowId};
pub use checkpoint::{
    crc64, CheckpointError, CheckpointFaultFs, CheckpointFs, CheckpointStore, LoadOutcome,
    RestoreError, Snapshot, StdFs, WriteFault, FORMAT_VERSION, KEEP_GENERATIONS, MAGIC,
};
pub use config::{Nanos, SimConfig};
pub use engine::{Engine, SimError};
pub use failure::FailureSet;
pub use fault::{
    FaultAction, FaultEvent, FaultPlan, FaultStorm, FaultTarget, FaultView, LinkHealth,
};
pub use macroflow::{
    run_hybrid, FluidStats, FluidStop, FluidTier, HybridReport, IdealOracle, MacroFlow, RateOracle,
};
pub use metrics::{FlowRecord, LatencyHistogram, LinkMatrix, Metrics};
pub use par::WorkerPool;
pub use probe::{NoopProbe, Probe, SkipView, SlotView};
pub use profiler::{NoopProfiler, Phase, PhaseSpan, Profiler};
pub use queues::NodeQueues;
pub use rng::NodeRng;
pub use router::{ClassId, DirectRouter, RouteDecision, Router};
pub use trace::{circuit_wait_slots, FlowSampler, HopEvent, HopKind, CIRCUIT_NEVER};

/// Internal hot-path types re-exported for this crate's Criterion
/// benches (`benches/hotpath.rs`). Not part of the public API.
#[doc(hidden)]
pub mod bench_internals {
    pub use crate::calendar::SlotCalendar;
    pub use crate::flow_table::FlowTable;
}
