//! Failure injection: dead nodes and links.
//!
//! §6 ("Practicality benefits") argues that modular semi-oblivious designs
//! shrink the blast radius of failures compared to flat designs with many
//! random indirect hops. The engine consults a [`FailureSet`] before every
//! transmission: circuits touching a failed node or failed (directed) link
//! carry nothing.

use sorn_topology::NodeId;
use std::collections::HashSet;

/// The set of currently failed elements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSet {
    nodes: HashSet<u32>,
    links: HashSet<(u32, u32)>,
}

impl FailureSet {
    /// No failures.
    pub fn none() -> Self {
        FailureSet::default()
    }

    /// Marks a node failed (all its circuits die).
    pub fn fail_node(&mut self, node: NodeId) {
        self.nodes.insert(node.0);
    }

    /// Marks the directed link `src → dst` failed.
    pub fn fail_link(&mut self, src: NodeId, dst: NodeId) {
        self.links.insert((src.0, dst.0));
    }

    /// Marks both directions of a link failed.
    pub fn fail_link_bidir(&mut self, a: NodeId, b: NodeId) {
        self.fail_link(a, b);
        self.fail_link(b, a);
    }

    /// Restores a node.
    pub fn restore_node(&mut self, node: NodeId) {
        self.nodes.remove(&node.0);
    }

    /// Restores a directed link.
    pub fn restore_link(&mut self, src: NodeId, dst: NodeId) {
        self.links.remove(&(src.0, dst.0));
    }

    /// True when the circuit `src → dst` is usable.
    #[inline]
    pub fn circuit_up(&self, src: NodeId, dst: NodeId) -> bool {
        !self.nodes.contains(&src.0)
            && !self.nodes.contains(&dst.0)
            && !self.links.contains(&(src.0, dst.0))
    }

    /// True when nothing has failed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }

    /// Count of failed nodes.
    pub fn failed_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Count of failed directed links.
    pub fn failed_links(&self) -> usize {
        self.links.len()
    }

    /// True when `node` itself is failed.
    #[inline]
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.nodes.contains(&node.0)
    }

    /// The failed nodes, sorted by id.
    pub fn failed_node_ids(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.nodes.iter().map(|&n| NodeId(n)).collect();
        v.sort_unstable_by_key(|n| n.0);
        v
    }

    /// The failed directed links, sorted by (src, dst).
    pub fn failed_link_ids(&self) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = self
            .links
            .iter()
            .map(|&(a, b)| (NodeId(a), NodeId(b)))
            .collect();
        v.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_failure_kills_all_its_circuits() {
        let mut f = FailureSet::none();
        f.fail_node(NodeId(3));
        assert!(!f.circuit_up(NodeId(3), NodeId(1)));
        assert!(!f.circuit_up(NodeId(1), NodeId(3)));
        assert!(f.circuit_up(NodeId(1), NodeId(2)));
        f.restore_node(NodeId(3));
        assert!(f.circuit_up(NodeId(3), NodeId(1)));
    }

    #[test]
    fn link_failure_is_directional() {
        let mut f = FailureSet::none();
        f.fail_link(NodeId(0), NodeId(1));
        assert!(!f.circuit_up(NodeId(0), NodeId(1)));
        assert!(f.circuit_up(NodeId(1), NodeId(0)));
        f.fail_link_bidir(NodeId(4), NodeId(5));
        assert!(!f.circuit_up(NodeId(4), NodeId(5)));
        assert!(!f.circuit_up(NodeId(5), NodeId(4)));
        f.restore_link(NodeId(0), NodeId(1));
        assert!(f.circuit_up(NodeId(0), NodeId(1)));
    }

    #[test]
    fn emptiness_and_counts() {
        let mut f = FailureSet::none();
        assert!(f.is_empty());
        f.fail_node(NodeId(1));
        f.fail_link(NodeId(2), NodeId(3));
        assert!(!f.is_empty());
        assert_eq!(f.failed_nodes(), 1);
        assert_eq!(f.failed_links(), 1);
    }
}
