//! Struct-of-arrays storage for active flows.
//!
//! The engine previously tracked flows in a slab of `Option<ActiveFlow>`
//! behind a `FlowId → slot` hash map. At warehouse scale the hash probe
//! per delivered cell and the pointer-chasing slab layout dominate the
//! delivery path, so this module flattens the slab into parallel `Vec`s
//! (one per field — the transmit/delivery walks touch only the columns
//! they need) with a `u64`-word liveness bitset, and replaces the hash
//! map with a dense direct-mapped `id → slot` table for the
//! simulation-assigned id range (hash spill only for outliers).
//!
//! Slot allocation is LIFO through an explicit free list, byte-for-byte
//! the discipline of the slab it replaces, so checkpoints taken from a
//! [`FlowTable`]-backed engine are identical to the legacy layout's
//! (`to_slab`/`from_slab` convert at the snapshot boundary).

use crate::cell::{Cell, Flow, FlowId};
use crate::config::Nanos;
use crate::engine::ActiveFlow;
use crate::hash::FastHashBuilder;
use crate::metrics::FlowRecord;
use sorn_topology::NodeId;
use std::collections::HashMap;

/// Flow ids below this go through the dense direct-mapped index (grown
/// on demand to the highest id seen); larger ids spill to a hash map so
/// a hostile id cannot allocate an absurd table.
const DENSE_ID_LIMIT: u64 = 1 << 22;

/// Dense-index sentinel: this id is not an active flow.
const NO_SLOT: u32 = u32::MAX;

/// Active flows as parallel columns indexed by slot.
#[derive(Debug, Default)]
pub struct FlowTable {
    ids: Vec<FlowId>,
    srcs: Vec<NodeId>,
    dsts: Vec<NodeId>,
    sizes: Vec<u64>,
    arrivals: Vec<Nanos>,
    totals: Vec<u64>,
    injected: Vec<u64>,
    delivered: Vec<u64>,
    max_hops: Vec<u8>,
    /// One bit per slot: set while the slot holds a live flow.
    live: Vec<u64>,
    /// Vacant slots, reused LIFO — the same order the legacy slab's
    /// free list produced, so restored runs allocate identically.
    free: Vec<u32>,
    /// `id → slot` for ids below [`DENSE_ID_LIMIT`].
    dense: Vec<u32>,
    /// `id → slot` for ids at or above [`DENSE_ID_LIMIT`].
    spill: HashMap<u64, u32, FastHashBuilder>,
    live_count: usize,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of live (indexed) flows.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    fn is_live(&self, slot: usize) -> bool {
        self.live
            .get(slot / 64)
            .is_some_and(|w| w & (1u64 << (slot % 64)) != 0)
    }

    fn index_get(&self, id: FlowId) -> Option<usize> {
        if id.0 < DENSE_ID_LIMIT {
            match self.dense.get(id.0 as usize) {
                Some(&s) if s != NO_SLOT => Some(s as usize),
                _ => None,
            }
        } else {
            self.spill.get(&id.0).map(|&s| s as usize)
        }
    }

    /// Points `id` at `slot`; returns `true` when the id was not
    /// indexed before (duplicate ids overwrite, like the map they
    /// replace, leaving the old slot an unindexed orphan).
    fn index_set(&mut self, id: FlowId, slot: u32) -> bool {
        if id.0 < DENSE_ID_LIMIT {
            let i = id.0 as usize;
            if i >= self.dense.len() {
                self.dense.resize(i + 1, NO_SLOT);
            }
            let was = self.dense[i];
            self.dense[i] = slot;
            was == NO_SLOT
        } else {
            self.spill.insert(id.0, slot).is_none()
        }
    }

    fn index_remove(&mut self, id: FlowId) {
        if id.0 < DENSE_ID_LIMIT {
            if let Some(s) = self.dense.get_mut(id.0 as usize) {
                *s = NO_SLOT;
            }
        } else {
            self.spill.remove(&id.0);
        }
    }

    /// Admits a newly arrived flow; returns its slot (reused LIFO from
    /// the free list, else appended).
    pub fn insert(&mut self, flow: &Flow, total_cells: u64) -> usize {
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                let s = self.ids.len();
                self.ids.push(FlowId(0));
                self.srcs.push(NodeId(0));
                self.dsts.push(NodeId(0));
                self.sizes.push(0);
                self.arrivals.push(0);
                self.totals.push(0);
                self.injected.push(0);
                self.delivered.push(0);
                self.max_hops.push(0);
                if s / 64 == self.live.len() {
                    self.live.push(0);
                }
                s
            }
        };
        self.ids[slot] = flow.id;
        self.srcs[slot] = flow.src;
        self.dsts[slot] = flow.dst;
        self.sizes[slot] = flow.size_bytes;
        self.arrivals[slot] = flow.arrival_ns;
        self.totals[slot] = total_cells;
        self.injected[slot] = 0;
        self.delivered[slot] = 0;
        self.max_hops[slot] = 0;
        self.live[slot / 64] |= 1u64 << (slot % 64);
        if self.index_set(flow.id, slot as u32) {
            self.live_count += 1;
        }
        slot
    }

    /// Builds the next cell of the flow in `slot` (injection path);
    /// returns it with `true` when this was the flow's last cell.
    #[inline]
    pub fn next_cell(&mut self, slot: usize, now: Nanos) -> (Cell, bool) {
        debug_assert!(self.is_live(slot), "injecting from a vacant slot");
        let cell = Cell {
            flow: self.ids[slot],
            seq: self.injected[slot],
            src: self.srcs[slot],
            dst: self.dsts[slot],
            injected_ns: now,
            hops: 0,
            tag: 0,
        };
        self.injected[slot] += 1;
        (cell, self.injected[slot] >= self.totals[slot])
    }

    /// Counts one delivered cell against its flow; returns the
    /// completion record when this delivery finished the flow (the slot
    /// is freed and the id unindexed). `None` for unknown ids (a cell
    /// of an already-completed or never-admitted flow) and for flows
    /// still in progress, exactly like the map lookup it replaces.
    #[inline]
    pub fn record_delivery(&mut self, id: FlowId, hops: u8, now: Nanos) -> Option<FlowRecord> {
        let slot = self.index_get(id)?;
        self.delivered[slot] += 1;
        self.max_hops[slot] = self.max_hops[slot].max(hops);
        if self.delivered[slot] < self.totals[slot] {
            return None;
        }
        self.live[slot / 64] &= !(1u64 << (slot % 64));
        self.free.push(slot as u32);
        self.index_remove(id);
        self.live_count -= 1;
        Some(FlowRecord {
            id,
            size_bytes: self.sizes[slot],
            arrival_ns: self.arrivals[slot],
            completion_ns: now,
            max_hops: self.max_hops[slot],
        })
    }

    /// Exports the table in the checkpoint wire layout: the legacy
    /// `Option<ActiveFlow>` slab, vacant slots `None`.
    pub(crate) fn to_slab(&self) -> Vec<Option<ActiveFlow>> {
        (0..self.ids.len())
            .map(|s| {
                self.is_live(s).then(|| ActiveFlow {
                    flow: Flow {
                        id: self.ids[s],
                        src: self.srcs[s],
                        dst: self.dsts[s],
                        size_bytes: self.sizes[s],
                        arrival_ns: self.arrivals[s],
                    },
                    total_cells: self.totals[s],
                    injected: self.injected[s],
                    delivered: self.delivered[s],
                    max_hops: self.max_hops[s],
                })
            })
            .collect()
    }

    /// The free list in checkpoint order (stack bottom first).
    pub(crate) fn free_slots(&self) -> Vec<u64> {
        self.free.iter().map(|&s| s as u64).collect()
    }

    /// Rebuilds a table from a checkpointed slab and free list. The
    /// caller (engine restore) has already validated that the free list
    /// names exactly the vacant slots and that no id occupies two slots.
    pub(crate) fn from_slab(slab: &[Option<ActiveFlow>], free: Vec<u32>) -> Self {
        let mut table = FlowTable {
            live: vec![0u64; slab.len().div_ceil(64)],
            free,
            ..FlowTable::default()
        };
        for (s, entry) in slab.iter().enumerate() {
            match entry {
                Some(af) => {
                    table.ids.push(af.flow.id);
                    table.srcs.push(af.flow.src);
                    table.dsts.push(af.flow.dst);
                    table.sizes.push(af.flow.size_bytes);
                    table.arrivals.push(af.flow.arrival_ns);
                    table.totals.push(af.total_cells);
                    table.injected.push(af.injected);
                    table.delivered.push(af.delivered);
                    table.max_hops.push(af.max_hops);
                    table.live[s / 64] |= 1u64 << (s % 64);
                    if table.index_set(af.flow.id, s as u32) {
                        table.live_count += 1;
                    }
                }
                None => {
                    table.ids.push(FlowId(0));
                    table.srcs.push(NodeId(0));
                    table.dsts.push(NodeId(0));
                    table.sizes.push(0);
                    table.arrivals.push(0);
                    table.totals.push(0);
                    table.injected.push(0);
                    table.delivered.push(0);
                    table.max_hops.push(0);
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(id: u64) -> Flow {
        Flow {
            id: FlowId(id),
            src: NodeId(1),
            dst: NodeId(2),
            size_bytes: 2500,
            arrival_ns: 7,
        }
    }

    #[test]
    fn slots_recycle_lifo_and_records_are_per_flow() {
        let mut t = FlowTable::new();
        let s0 = t.insert(&flow(10), 2);
        assert_eq!(s0, 0);
        assert_eq!(t.live_count(), 1);
        let (c, done) = t.next_cell(s0, 100);
        assert_eq!((c.flow, c.seq, done), (FlowId(10), 0, false));
        let (c, done) = t.next_cell(s0, 200);
        assert_eq!((c.seq, done), (1, true));
        assert!(t.record_delivery(FlowId(10), 1, 300).is_none());
        let rec = t.record_delivery(FlowId(10), 3, 400).expect("complete");
        assert_eq!(
            (rec.id, rec.completion_ns, rec.max_hops),
            (FlowId(10), 400, 3)
        );
        assert_eq!(t.live_count(), 0);
        // The freed slot is reused for the next flow, LIFO.
        assert_eq!(t.insert(&flow(20), 1), 0);
        // Unknown / completed ids are ignored, not misattributed.
        assert!(t.record_delivery(FlowId(10), 1, 500).is_none());
    }

    #[test]
    fn spill_ids_resolve_like_dense_ones() {
        let mut t = FlowTable::new();
        let big = DENSE_ID_LIMIT + 17;
        let s = t.insert(&flow(big), 1);
        t.next_cell(s, 0);
        let rec = t.record_delivery(FlowId(big), 2, 9).expect("complete");
        assert_eq!(rec.id, FlowId(big));
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn slab_round_trip_preserves_layout() {
        let mut t = FlowTable::new();
        t.insert(&flow(1), 4);
        let s1 = t.insert(&flow(2), 1);
        t.insert(&flow(3), 4);
        t.next_cell(s1, 0);
        t.record_delivery(FlowId(2), 1, 50);
        let slab = t.to_slab();
        let free = t.free_slots();
        assert_eq!(slab.len(), 3);
        assert!(slab[1].is_none());
        assert_eq!(free, vec![1]);
        let rebuilt = FlowTable::from_slab(&slab, free.iter().map(|&f| f as u32).collect());
        assert_eq!(rebuilt.live_count(), 2);
        assert_eq!(rebuilt.to_slab().len(), 3);
        // The rebuilt table allocates the vacant slot next, as before.
        let mut rebuilt = rebuilt;
        assert_eq!(rebuilt.insert(&flow(9), 1), 1);
    }
}
