//! Run metrics: flow completion times, hop counts, utilization.

use crate::cell::FlowId;
use crate::config::Nanos;

/// Outcome of one completed flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// The flow.
    pub id: FlowId,
    /// Transfer size in bytes.
    pub size_bytes: u64,
    /// Arrival time at the source NIC.
    pub arrival_ns: Nanos,
    /// Time the last cell was delivered.
    pub completion_ns: Nanos,
    /// Largest hop count any of the flow's cells took.
    pub max_hops: u8,
}

impl FlowRecord {
    /// Flow completion time.
    pub fn fct_ns(&self) -> Nanos {
        self.completion_ns - self.arrival_ns
    }
}

/// A log-bucketed (power-of-two) histogram of cell delivery latencies.
///
/// Bucket 0 counts exact-zero latencies; bucket `k` (for `k >= 1`)
/// counts latencies in `[2^(k-1), 2^k)`. 63 doubling buckets cover the
/// full `u64` nanosecond range, so recording never saturates in
/// practice. Percentile queries return the inclusive upper bound of the
/// bucket holding the requested rank — an over-estimate by at most 2x,
/// at O(1) memory for arbitrarily long runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
}

// `[u64; 64]` has no derived `Default` (arrays stop at 32), so spell
// it out.
impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// The bucket index covering `latency_ns`.
    fn bucket_of(latency_ns: Nanos) -> usize {
        if latency_ns == 0 {
            0
        } else {
            // Values >= 2^63 share the top bucket.
            ((64 - latency_ns.leading_zeros()) as usize).min(63)
        }
    }

    /// The inclusive upper bound of bucket `k`.
    fn upper_bound(k: usize) -> Nanos {
        if k == 0 {
            0
        } else if k >= 63 {
            // The top bucket also absorbs values >= 2^63.
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// The raw bucket array and sample count, for checkpointing.
    pub(crate) fn raw_parts(&self) -> (&[u64; 64], u64) {
        (&self.buckets, self.count)
    }

    /// Rebuilds a histogram from checkpointed parts.
    pub(crate) fn from_raw_parts(buckets: [u64; 64], count: u64) -> Self {
        LatencyHistogram { buckets, count }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency_ns: Nanos) {
        self.buckets[Self::bucket_of(latency_ns)] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs,
    /// ascending — enough to rebuild a cumulative distribution
    /// (Prometheus-style `le` buckets) without exposing the layout.
    pub fn nonzero_buckets(&self) -> Vec<(Nanos, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (Self::upper_bound(k), c))
            .collect()
    }

    /// Latency percentile (`p` in `[0, 100]`) as the upper bound of the
    /// bucket holding that rank; `None` when no samples were recorded.
    ///
    /// Rank convention matches [`Metrics::fct_percentile_ns`]:
    /// `round(p/100 * (count - 1))` over the sorted samples.
    pub fn percentile(&self, p: f64) -> Option<Nanos> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0).clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(Self::upper_bound(k));
            }
        }
        // Unreachable: `seen` reaches `count > rank` by the last bucket.
        Some(u64::MAX)
    }

    /// Median latency (bucket upper bound).
    pub fn p50(&self) -> Option<Nanos> {
        self.percentile(50.0)
    }

    /// 99th-percentile latency (bucket upper bound).
    pub fn p99(&self) -> Option<Nanos> {
        self.percentile(99.0)
    }

    /// 99.9th-percentile latency (bucket upper bound).
    pub fn p999(&self) -> Option<Nanos> {
        self.percentile(99.9)
    }
}

/// One source node's outgoing-link counts: `(dst, count)` pairs sorted
/// by `dst`, never holding a zero count. The engine's sharded transmit
/// walk receives bands of these rows and bumps them directly.
pub(crate) type LinkRow = Vec<(u32, u64)>;

/// Sparse per-directed-link transmission counts.
///
/// One sorted `(dst, count)` row per source node instead of a flat
/// `n × n` matrix — at warehouse scale a dense matrix is quadratic
/// (34 GiB at 65k nodes) while real schedules exercise only each node's
/// neighbor links. Rows never store zero counts, so structural equality
/// (`PartialEq`, used by the determinism suites) remains equality of
/// content. The matrix grows on demand when a larger node id appears
/// (hand-built metrics); the engine pre-sizes it to the network.
/// Accessors mirror the map API this replaced and expose only links
/// with a nonzero count, preserving the semantics of
/// [`Metrics::link_load_cv`] and [`Metrics::hottest_links`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkMatrix {
    n: u32,
    rows: Vec<LinkRow>,
    entries: usize,
}

impl LinkMatrix {
    /// Creates a matrix pre-sized for node ids `0..n`.
    pub fn with_nodes(n: usize) -> Self {
        LinkMatrix {
            n: n as u32,
            rows: vec![Vec::new(); n],
            entries: 0,
        }
    }

    /// The matrix dimension (node ids `0..dim` are in range), for
    /// checkpointing: a restored matrix must be rebuilt at the same
    /// dimension so the engine's sharded row bands keep lining up.
    pub(crate) fn dim(&self) -> u32 {
        self.n
    }

    fn grow_to(&mut self, need: u32) {
        self.rows.resize(need as usize, Vec::new());
        self.n = need;
    }

    /// Bumps `dst` in a detached row (the sharded transmit walk writes
    /// through row bands, bypassing `record`); returns `true` when the
    /// link was newly inserted, so the caller can report the delta to
    /// [`LinkMatrix::add_nonzero`].
    #[inline]
    pub(crate) fn bump_row(row: &mut LinkRow, dst: u32) -> bool {
        match row.binary_search_by_key(&dst, |&(d, _)| d) {
            Ok(i) => {
                row[i].1 += 1;
                false
            }
            Err(i) => {
                row.insert(i, (dst, 1));
                true
            }
        }
    }

    /// Counts one transmission on `src → dst` (the hot path).
    #[inline]
    pub fn record(&mut self, src: u32, dst: u32) {
        if src >= self.n || dst >= self.n {
            self.grow_to(src.max(dst) + 1);
        }
        if Self::bump_row(&mut self.rows[src as usize], dst) {
            self.entries += 1;
        }
    }

    /// Splits the matrix into mutable bands of `rows_per_band` whole
    /// rows, for the engine's sharded transmit walk: each shard owns the
    /// rows of its node range and writes counts without synchronization.
    /// Returns the matrix dimension alongside the band iterator so the
    /// caller can verify it matches the network size.
    pub(crate) fn row_bands_mut(
        &mut self,
        rows_per_band: usize,
    ) -> (usize, std::slice::ChunksMut<'_, LinkRow>) {
        let n = self.n as usize;
        (n, self.rows.chunks_mut(rows_per_band.max(1)))
    }

    /// Folds a shard's count of newly nonzero links back in (the bands
    /// handed out by [`LinkMatrix::row_bands_mut`] bypass `record`).
    pub(crate) fn add_nonzero(&mut self, newly_nonzero: usize) {
        self.entries += newly_nonzero;
    }

    /// Sets a link's count outright (building metrics by hand). A zero
    /// count removes the entry.
    pub fn insert(&mut self, link: (u32, u32), count: u64) {
        let (src, dst) = link;
        if src >= self.n || dst >= self.n {
            self.grow_to(src.max(dst) + 1);
        }
        let row = &mut self.rows[src as usize];
        match (row.binary_search_by_key(&dst, |&(d, _)| d), count) {
            (Ok(i), 0) => {
                row.remove(i);
                self.entries -= 1;
            }
            (Ok(i), c) => row[i].1 = c,
            (Err(_), 0) => {}
            (Err(i), c) => {
                row.insert(i, (dst, c));
                self.entries += 1;
            }
        }
    }

    /// The count on one directed link.
    pub fn get(&self, link: (u32, u32)) -> u64 {
        let (src, dst) = link;
        if src >= self.n || dst >= self.n {
            return 0;
        }
        let row = &self.rows[src as usize];
        match row.binary_search_by_key(&dst, |&(d, _)| d) {
            Ok(i) => row[i].1,
            Err(_) => 0,
        }
    }

    /// Number of links with a nonzero count.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no link has transmitted.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Links with a nonzero count, ascending by `(src, dst)`.
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u32), u64)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(src, row)| row.iter().map(move |&(dst, c)| ((src as u32, dst), c)))
    }

    /// Nonzero link keys, ascending.
    pub fn keys(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.iter().map(|(l, _)| l)
    }

    /// Nonzero counts, in key order.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(_, c)| c)
    }
}

/// Aggregated counters for a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Slots simulated so far.
    pub slots: u64,
    /// Cells injected at sources.
    pub injected_cells: u64,
    /// Cells delivered to their destination.
    pub delivered_cells: u64,
    /// Payload bytes delivered (final hop).
    pub delivered_bytes: u64,
    /// Circuit transmissions (every hop of every cell).
    pub transmissions: u64,
    /// Slots in which a scheduled circuit went unused for lack of an
    /// admissible cell (per uplink).
    pub idle_circuit_slots: u64,
    /// Histogram of delivered-cell hop counts (index = hops, saturating).
    pub hop_histogram: [u64; 32],
    /// Sum of per-cell delivery latencies, for the mean.
    pub cell_latency_sum_ns: u128,
    /// Log-bucketed distribution of per-cell delivery latencies.
    pub cell_latency: LatencyHistogram,
    /// Completed flows.
    pub flows: Vec<FlowRecord>,
    /// Peak total queue depth observed across all nodes.
    pub peak_queue_depth: usize,
    /// Cells dropped at full node queues (0 unless a queue cap is set),
    /// plus cells a fault-aware router sheds toward a failed destination.
    pub dropped_cells: u64,
    /// Transmissions per directed virtual link `(src, dst)`.
    pub link_transmissions: LinkMatrix,
    /// Cells still queued at `Engine::finish` that cannot make progress:
    /// their destination is failed, or they wait on a specific next hop
    /// whose circuit is down.
    pub stranded_cells: u64,
    /// Slots during which at least one element was failed.
    pub failure_slots: u64,
    /// Distinct failure episodes (healthy → degraded transitions).
    pub failure_episodes: u64,
    /// Cells delivered while at least one element was failed.
    pub delivered_during_failure: u64,
    /// Per-episode recovery times: from the restoration that returned the
    /// network to full health until total queue depth fell back to its
    /// pre-failure level.
    pub recovery_times_ns: Vec<Nanos>,
    /// Slots advanced without the full per-node walk: provably-quiet
    /// slots covered by `step_quiet` or a `fast_forward_to` jump. A
    /// fast-forward jump only covers slots that per-slot stepping would
    /// also have proven quiet, so the count is identical either way.
    /// Always ≤ `slots`.
    pub slots_skipped: u64,
}

impl Metrics {
    /// Records a delivered cell.
    pub(crate) fn on_delivered(&mut self, hops: u8, latency_ns: Nanos, payload_bytes: u32) {
        self.delivered_cells += 1;
        self.delivered_bytes += payload_bytes as u64;
        let h = (hops as usize).min(self.hop_histogram.len() - 1);
        self.hop_histogram[h] += 1;
        self.cell_latency_sum_ns += latency_ns as u128;
        self.cell_latency.record(latency_ns);
    }

    /// Median cell delivery latency (log-bucket upper bound).
    pub fn cell_latency_p50_ns(&self) -> Option<Nanos> {
        self.cell_latency.p50()
    }

    /// 99th-percentile cell delivery latency (log-bucket upper bound).
    pub fn cell_latency_p99_ns(&self) -> Option<Nanos> {
        self.cell_latency.p99()
    }

    /// 99.9th-percentile cell delivery latency (log-bucket upper bound).
    pub fn cell_latency_p999_ns(&self) -> Option<Nanos> {
        self.cell_latency.p999()
    }

    /// Mean delivered-cell latency in nanoseconds.
    pub fn mean_cell_latency_ns(&self) -> f64 {
        if self.delivered_cells == 0 {
            return 0.0;
        }
        self.cell_latency_sum_ns as f64 / self.delivered_cells as f64
    }

    /// Mean hops per delivered cell — the paper's normalized bandwidth
    /// cost (Table 1, "Norm. BW cost").
    pub fn mean_hops(&self) -> f64 {
        if self.delivered_cells == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .hop_histogram
            .iter()
            .enumerate()
            .map(|(h, &c)| h as u64 * c)
            .sum();
        weighted as f64 / self.delivered_cells as f64
    }

    /// Fraction of circuit transmissions that were final-hop deliveries —
    /// the paper's throughput metric `r` (§4 "Throughput"), measured on
    /// offered traffic rather than worst-case.
    pub fn delivery_fraction(&self) -> f64 {
        if self.transmissions == 0 {
            return 0.0;
        }
        self.delivered_cells as f64 / self.transmissions as f64
    }

    /// Fraction of scheduled circuit-slots actually used.
    pub fn circuit_utilization(&self) -> f64 {
        let total = self.transmissions + self.idle_circuit_slots;
        if total == 0 {
            return 0.0;
        }
        self.transmissions as f64 / total as f64
    }

    /// The `k` busiest directed links with their transmission counts,
    /// descending (ties broken by link id for determinism).
    pub fn hottest_links(&self, k: usize) -> Vec<((u32, u32), u64)> {
        let mut v: Vec<((u32, u32), u64)> = self.link_transmissions.iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Coefficient of variation of per-link transmissions — a load-
    /// balance quality measure (0 = perfectly even).
    ///
    /// The mean is taken over the per-link counts themselves, so the
    /// statistic stays correct even when `transmissions` and the link
    /// map disagree (hand-built or merged metrics).
    pub fn link_load_cv(&self) -> f64 {
        let n = self.link_transmissions.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.link_transmissions.values().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .link_transmissions
            .values()
            .map(|c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }

    /// Fraction of injected cells that were dropped at full queues.
    pub fn loss_rate(&self) -> f64 {
        if self.injected_cells == 0 {
            return 0.0;
        }
        self.dropped_cells as f64 / self.injected_cells as f64
    }

    /// Goodput while degraded, in delivered cells per slot; 0 when the
    /// run saw no failure slots.
    pub fn goodput_during_failure(&self) -> f64 {
        if self.failure_slots == 0 {
            return 0.0;
        }
        self.delivered_during_failure as f64 / self.failure_slots as f64
    }

    /// Goodput over the healthy slots, in delivered cells per slot.
    pub fn goodput_healthy(&self) -> f64 {
        let healthy_slots = self.slots.saturating_sub(self.failure_slots);
        if healthy_slots == 0 {
            return 0.0;
        }
        (self.delivered_cells - self.delivered_during_failure) as f64 / healthy_slots as f64
    }

    /// Degraded-goodput ratio: goodput during failures over healthy
    /// goodput (1.0 = no degradation; 1.0 when either side is
    /// unmeasured).
    pub fn degraded_goodput_ratio(&self) -> f64 {
        let healthy = self.goodput_healthy();
        if self.failure_slots == 0 || healthy == 0.0 {
            return 1.0;
        }
        self.goodput_during_failure() / healthy
    }

    /// Mean time-to-recover across failure episodes whose recovery
    /// completed, in nanoseconds.
    pub fn mean_recovery_ns(&self) -> Option<f64> {
        if self.recovery_times_ns.is_empty() {
            return None;
        }
        Some(
            self.recovery_times_ns
                .iter()
                .map(|&t| t as f64)
                .sum::<f64>()
                / self.recovery_times_ns.len() as f64,
        )
    }

    /// Worst-case time-to-recover, in nanoseconds.
    pub fn max_recovery_ns(&self) -> Option<Nanos> {
        self.recovery_times_ns.iter().copied().max()
    }

    /// Mean flow completion time in nanoseconds.
    pub fn mean_fct_ns(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        self.flows.iter().map(|f| f.fct_ns() as f64).sum::<f64>() / self.flows.len() as f64
    }

    /// FCT percentile (`p` in `[0, 100]`), in nanoseconds.
    pub fn fct_percentile_ns(&self, p: f64) -> Option<Nanos> {
        if self.flows.is_empty() {
            return None;
        }
        let mut fcts: Vec<Nanos> = self.flows.iter().map(|f| f.fct_ns()).collect();
        fcts.sort_unstable();
        let rank = ((p / 100.0) * (fcts.len() - 1) as f64).round() as usize;
        Some(fcts[rank.min(fcts.len() - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(fct: Nanos) -> FlowRecord {
        FlowRecord {
            id: FlowId(0),
            size_bytes: 1000,
            arrival_ns: 100,
            completion_ns: 100 + fct,
            max_hops: 2,
        }
    }

    #[test]
    fn delivered_cells_update_histogram_and_latency() {
        let mut m = Metrics::default();
        m.on_delivered(2, 1000, 1250);
        m.on_delivered(3, 3000, 1250);
        assert_eq!(m.delivered_cells, 2);
        assert_eq!(m.delivered_bytes, 2500);
        assert_eq!(m.hop_histogram[2], 1);
        assert_eq!(m.hop_histogram[3], 1);
        assert!((m.mean_cell_latency_ns() - 2000.0).abs() < 1e-9);
        assert!((m.mean_hops() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn delivery_fraction_counts_bandwidth_tax() {
        let mut m = Metrics::default();
        m.transmissions = 10;
        m.delivered_cells = 4;
        assert!((m.delivery_fraction() - 0.4).abs() < 1e-12);
        m.idle_circuit_slots = 10;
        assert!((m.circuit_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fct_statistics() {
        let mut m = Metrics::default();
        m.flows = vec![record(100), record(200), record(300), record(400)];
        assert!((m.mean_fct_ns() - 250.0).abs() < 1e-9);
        assert_eq!(m.fct_percentile_ns(0.0), Some(100));
        assert_eq!(m.fct_percentile_ns(100.0), Some(400));
        assert_eq!(m.fct_percentile_ns(50.0), Some(300)); // round(1.5)=2
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.mean_cell_latency_ns(), 0.0);
        assert_eq!(m.mean_hops(), 0.0);
        assert_eq!(m.delivery_fraction(), 0.0);
        assert_eq!(m.circuit_utilization(), 0.0);
        assert_eq!(m.mean_fct_ns(), 0.0);
        assert_eq!(m.fct_percentile_ns(50.0), None);
    }

    #[test]
    fn hottest_links_and_cv() {
        let mut m = Metrics::default();
        m.link_transmissions.insert((0, 1), 10);
        m.link_transmissions.insert((1, 2), 4);
        m.link_transmissions.insert((2, 0), 4);
        m.transmissions = 18;
        let hot = m.hottest_links(2);
        assert_eq!(hot[0], ((0, 1), 10));
        assert_eq!(hot[1].1, 4);
        assert!(m.link_load_cv() > 0.0);
        // Perfectly even load has CV 0.
        let mut even = Metrics::default();
        even.link_transmissions.insert((0, 1), 5);
        even.link_transmissions.insert((1, 0), 5);
        even.transmissions = 10;
        assert!(even.link_load_cv() < 1e-12);
        // Empty map: 0.
        assert_eq!(Metrics::default().link_load_cv(), 0.0);
    }

    #[test]
    fn link_matrix_grows_and_tracks_nonzero() {
        let mut m = LinkMatrix::default();
        m.record(0, 1);
        m.record(5, 3); // auto-grow past both node ids
        m.record(0, 1);
        assert_eq!(m.get((0, 1)), 2);
        assert_eq!(m.get((5, 3)), 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![((0, 1), 2), ((5, 3), 1)]);
        // Zeroing a link removes it from the nonzero view.
        m.insert((0, 1), 0);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get((0, 1)), 0);
        // Out-of-range links read as zero without growing.
        assert_eq!(m.get((99, 99)), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn saturating_hop_histogram() {
        let mut m = Metrics::default();
        m.on_delivered(200, 0, 1);
        assert_eq!(m.hop_histogram[31], 1);
    }

    #[test]
    fn link_load_cv_ignores_inconsistent_total() {
        // Regression: the CV once derived its mean from `transmissions`,
        // so a total inconsistent with the link map skewed the result.
        let mut m = Metrics::default();
        m.link_transmissions.insert((0, 1), 5);
        m.link_transmissions.insert((1, 0), 5);
        m.transmissions = 99; // deliberately inconsistent
        assert!(m.link_load_cv() < 1e-12, "even links must give CV 0");

        let mut skew = Metrics::default();
        skew.link_transmissions.insert((0, 1), 9);
        skew.link_transmissions.insert((1, 0), 1);
        skew.transmissions = 0; // would divide by a zero mean before
                                // mean 5, sd 4 -> CV 0.8.
        assert!((skew.link_load_cv() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn latency_histogram_bucket_boundaries() {
        // Bucket 0 = {0}; bucket k = [2^(k-1), 2^k).
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 63);
        // Upper bounds are the largest value in each bucket.
        assert_eq!(LatencyHistogram::upper_bound(0), 0);
        assert_eq!(LatencyHistogram::upper_bound(1), 1);
        assert_eq!(LatencyHistogram::upper_bound(11), 2047);
        assert_eq!(LatencyHistogram::upper_bound(63), u64::MAX);
    }

    #[test]
    fn latency_histogram_percentiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.p50(), None);
        // 99 samples at ~600ns (bucket [512, 1024)), one at ~1ms.
        for _ in 0..99 {
            h.record(600);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), Some(1023));
        assert_eq!(h.p99(), Some(1023)); // rank 98 still in the low bucket
        assert_eq!(h.percentile(100.0), Some((1u64 << 20) - 1));
    }

    #[test]
    fn degradation_counters() {
        let mut m = Metrics::default();
        // Unmeasured runs report no degradation and no recoveries.
        assert_eq!(m.goodput_during_failure(), 0.0);
        assert_eq!(m.degraded_goodput_ratio(), 1.0);
        assert_eq!(m.mean_recovery_ns(), None);
        assert_eq!(m.max_recovery_ns(), None);
        m.slots = 100;
        m.failure_slots = 20;
        m.delivered_cells = 100;
        m.delivered_during_failure = 10;
        // Healthy: 90 cells over 80 slots; degraded: 10 cells over 20.
        assert!((m.goodput_healthy() - 1.125).abs() < 1e-12);
        assert!((m.goodput_during_failure() - 0.5).abs() < 1e-12);
        assert!((m.degraded_goodput_ratio() - 0.5 / 1.125).abs() < 1e-12);
        m.recovery_times_ns = vec![100, 300];
        assert_eq!(m.mean_recovery_ns(), Some(200.0));
        assert_eq!(m.max_recovery_ns(), Some(300));
    }

    #[test]
    fn metrics_expose_latency_percentiles() {
        let mut m = Metrics::default();
        for lat in [100, 200, 400, 800] {
            m.on_delivered(1, lat, 1250);
        }
        assert_eq!(m.cell_latency.count(), 4);
        // Rank convention: round(0.5 * 3) = 2 -> 400 -> bucket [256,512).
        assert_eq!(m.cell_latency_p50_ns(), Some(511));
        assert_eq!(m.cell_latency_p99_ns(), Some(1023));
        assert_eq!(m.cell_latency_p999_ns(), Some(1023));
    }
}
