//! Per-node virtual output queues.
//!
//! Each node keeps one FIFO per *specific* next hop plus one FIFO per
//! router-defined *class* (spray queues). When a circuit to `w` comes up,
//! the node serves the specific queue for `w` first — targeted traffic has
//! strict priority, as in RotorLB-style designs — then scans class queues
//! in the router's priority order for a cell whose constraints admit `w`.
//!
//! Specific queues are *sparse*: a node only ever queues toward the
//! handful of next hops its schedule connects it to, so holding one
//! `VecDeque` slot per node in the network is quadratic across the
//! fleet (16k nodes → 256M deque headers). Instead each node keeps a
//! short `(next-hop, FIFO)` list sorted by next-hop id and binary
//! searches it; emptied FIFOs stay in place so their capacity is
//! reused. Class pushes go through a precomputed `ClassId → index`
//! table — the transmit hot path never hashes and never scans for a
//! class.

use crate::cell::Cell;
use crate::router::{ClassId, Router};
use sorn_topology::NodeId;
use std::collections::VecDeque;

/// Sentinel in the class-index table for undeclared classes.
const NO_CLASS: u16 = u16::MAX;

/// The queue set of one node.
#[derive(Debug, Clone)]
pub struct NodeQueues {
    /// Nonempty-or-recycled FIFOs keyed by specific next hop, sorted by
    /// next-hop id. Emptied deques stay in the list so their capacity
    /// is reused on the next push toward the same hop.
    specific: Vec<(u32, VecDeque<Cell>)>,
    class: Vec<(ClassId, VecDeque<Cell>)>,
    /// Maps `ClassId.0` to an index into `class`; `NO_CLASS` when
    /// undeclared.
    class_index: Vec<u16>,
    /// Scratch for the order-preserving class scan (reused, empty
    /// between calls).
    scratch: Vec<Cell>,
    depth: usize,
}

impl NodeQueues {
    /// Creates queues for a node, with one class FIFO per router class.
    /// Specific next-hop FIFOs materialize on first push.
    pub fn new(classes: &[ClassId]) -> Self {
        let table_len = classes.iter().map(|c| c.0 as usize + 1).max().unwrap_or(0);
        let mut class_index = vec![NO_CLASS; table_len];
        for (i, c) in classes.iter().enumerate() {
            class_index[c.0 as usize] = i as u16;
        }
        NodeQueues {
            specific: Vec::new(),
            class: classes.iter().map(|&c| (c, VecDeque::new())).collect(),
            class_index,
            scratch: Vec::new(),
            depth: 0,
        }
    }

    /// Total queued cells at this node.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Enqueues a cell destined for a specific next hop.
    pub fn push_specific(&mut self, next: NodeId, cell: Cell) {
        let key = next.0;
        match self.specific.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.specific[i].1.push_back(cell),
            Err(i) => {
                let mut q = VecDeque::new();
                q.push_back(cell);
                self.specific.insert(i, (key, q));
            }
        }
        self.depth += 1;
    }

    /// Enqueues a cell into a spray class.
    ///
    /// # Panics
    /// Panics if the router never declared `class` — that is a scheme bug.
    pub fn push_class(&mut self, class: ClassId, cell: Cell) {
        let idx = self
            .class_index
            .get(class.0 as usize)
            .copied()
            .filter(|&i| i != NO_CLASS)
            .unwrap_or_else(|| panic!("router routed into undeclared class {class:?}"));
        self.class[idx as usize].1.push_back(cell);
        self.depth += 1;
    }

    /// Pops the cell to transmit on a circuit `from → to`, if any.
    ///
    /// `scan_limit` bounds how deep each class queue is searched for an
    /// admissible cell (`0` = unbounded). Head-of-line cells whose
    /// constraints reject `to` are skipped, not dropped — they are
    /// rotated back to the front in their original order, so an
    /// admissible pop costs O(cells scanned), not O(queue length).
    pub fn pop_for_circuit<R: Router + ?Sized>(
        &mut self,
        router: &R,
        from: NodeId,
        to: NodeId,
        scan_limit: usize,
    ) -> Option<Cell> {
        if self.depth == 0 {
            return None; // nothing queued anywhere on this node
        }
        if let Ok(i) = self.specific.binary_search_by_key(&to.0, |&(k, _)| k) {
            if let Some(cell) = self.specific[i].1.pop_front() {
                self.depth -= 1;
                return Some(cell);
            }
        }
        let scratch = &mut self.scratch;
        for (class, q) in &mut self.class {
            let limit = if scan_limit == 0 {
                q.len()
            } else {
                scan_limit.min(q.len())
            };
            let mut admitted = None;
            for _ in 0..limit {
                let cell = q.pop_front().expect("limit <= len");
                if router.class_admits(*class, &cell, from, to) {
                    admitted = Some(cell);
                    break;
                }
                scratch.push(cell);
            }
            // Skipped heads go back to the front, original order intact.
            for cell in scratch.drain(..).rev() {
                q.push_front(cell);
            }
            if admitted.is_some() {
                self.depth -= 1;
                return admitted;
            }
        }
        None
    }

    /// Drains every queued cell (used when re-routing after a schedule
    /// update); returns the cells in an arbitrary but deterministic order.
    pub fn drain_all(&mut self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.depth);
        for (_, q) in &mut self.specific {
            out.extend(q.drain(..));
        }
        for (_, q) in &mut self.class {
            out.extend(q.drain(..));
        }
        self.depth = 0;
        out
    }

    /// Iterates every queued cell together with the specific next hop it
    /// waits for (`None` for class-queued cells). Order is unspecified;
    /// use for whole-queue accounting, not replay.
    pub fn iter_cells(&self) -> impl Iterator<Item = (Option<NodeId>, &Cell)> {
        self.specific
            .iter()
            .flat_map(|(k, q)| q.iter().map(move |c| (Some(NodeId(*k)), c)))
            .chain(
                self.class
                    .iter()
                    .flat_map(|(_, q)| q.iter().map(|c| (None, c))),
            )
    }

    /// Exports every FIFO's contents for checkpointing: nonempty
    /// specific queues as `(next-hop id, cells front-to-back)` in
    /// ascending next-hop order, and nonempty class queues as
    /// `(class id, cells front-to-back)` in declaration order. A
    /// restore replays the cells through `push_specific`/`push_class`
    /// in this order, which reproduces each FIFO byte-for-byte.
    #[allow(clippy::type_complexity)]
    pub(crate) fn export_cells(&self) -> (Vec<(u32, Vec<Cell>)>, Vec<(u16, Vec<Cell>)>) {
        let specific = self
            .specific
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|&(next, ref q)| (next, q.iter().copied().collect()))
            .collect();
        let class = self
            .class
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(c, q)| (c.0 as u16, q.iter().copied().collect()))
            .collect();
        (specific, class)
    }

    /// Number of cells queued for a specific next hop.
    pub fn specific_depth(&self, next: NodeId) -> usize {
        match self.specific.binary_search_by_key(&next.0, |&(k, _)| k) {
            Ok(i) => self.specific[i].1.len(),
            Err(_) => 0,
        }
    }

    /// Number of cells queued in a class.
    pub fn class_depth(&self, class: ClassId) -> usize {
        self.class_index
            .get(class.0 as usize)
            .copied()
            .filter(|&i| i != NO_CLASS)
            .map_or(0, |i| self.class[i as usize].1.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::FlowId;

    fn cell(dst: u32) -> Cell {
        Cell {
            flow: FlowId(0),
            seq: 0,
            src: NodeId(0),
            dst: NodeId(dst),
            injected_ns: 0,
            hops: 0,
            tag: 0,
        }
    }

    /// A router whose single class admits only even-numbered targets.
    struct EvenClassRouter;
    impl Router for EvenClassRouter {
        fn decide(
            &self,
            _node: NodeId,
            _cell: &mut Cell,
            _rng: &mut crate::rng::NodeRng,
        ) -> crate::router::RouteDecision {
            crate::router::RouteDecision::ToClass(ClassId(0))
        }
        fn class_admits(&self, _c: ClassId, _cell: &Cell, _from: NodeId, to: NodeId) -> bool {
            to.0.is_multiple_of(2)
        }
        fn classes(&self) -> &[ClassId] {
            &[ClassId(0)]
        }
        fn max_hops(&self) -> u8 {
            4
        }
        fn name(&self) -> &str {
            "even"
        }
    }

    #[test]
    fn specific_queue_has_priority() {
        let r = EvenClassRouter;
        let mut q = NodeQueues::new(r.classes());
        q.push_class(ClassId(0), cell(9));
        q.push_specific(NodeId(2), cell(7));
        assert_eq!(q.depth(), 2);
        // Circuit to node 2: specific cell (dst 7) wins over class cell.
        let got = q.pop_for_circuit(&r, NodeId(0), NodeId(2), 0).unwrap();
        assert_eq!(got.dst, NodeId(7));
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn class_scan_skips_inadmissible_heads() {
        let r = EvenClassRouter;
        let mut q = NodeQueues::new(r.classes());
        q.push_class(ClassId(0), cell(1)); // any cell; admissibility is on `to`
                                           // Circuit to odd node: class rejects.
        assert!(q.pop_for_circuit(&r, NodeId(0), NodeId(3), 0).is_none());
        // Circuit to even node: admitted.
        assert!(q.pop_for_circuit(&r, NodeId(0), NodeId(4), 0).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn scan_limit_bounds_search() {
        /// Admits only cells whose dst equals the circuit target.
        struct PickyRouter;
        impl Router for PickyRouter {
            fn decide(
                &self,
                _n: NodeId,
                _c: &mut Cell,
                _r: &mut crate::rng::NodeRng,
            ) -> crate::router::RouteDecision {
                crate::router::RouteDecision::ToClass(ClassId(0))
            }
            fn class_admits(&self, _c: ClassId, cell: &Cell, _f: NodeId, to: NodeId) -> bool {
                cell.dst == to
            }
            fn classes(&self) -> &[ClassId] {
                &[ClassId(0)]
            }
            fn max_hops(&self) -> u8 {
                4
            }
            fn name(&self) -> &str {
                "picky"
            }
        }
        let r = PickyRouter;
        let mut q = NodeQueues::new(r.classes());
        q.push_class(ClassId(0), cell(5));
        q.push_class(ClassId(0), cell(6));
        // With scan limit 1 only the head (dst 5) is considered.
        assert!(q.pop_for_circuit(&r, NodeId(0), NodeId(6), 1).is_none());
        // Unbounded scan finds the second cell.
        let got = q.pop_for_circuit(&r, NodeId(0), NodeId(6), 0).unwrap();
        assert_eq!(got.dst, NodeId(6));
    }

    #[test]
    fn skipped_heads_keep_their_order() {
        let r = EvenClassRouter;
        let mut q = NodeQueues::new(r.classes());
        // Only `to` matters for admission, so track order via dst.
        for d in [1, 3, 5, 7] {
            q.push_class(ClassId(0), cell(d));
        }
        // Admissible circuit: the head (dst 1) pops first...
        let got = q.pop_for_circuit(&r, NodeId(0), NodeId(2), 0).unwrap();
        assert_eq!(got.dst, NodeId(1));
        // ...and an inadmissible circuit in between must not reorder.
        assert!(q.pop_for_circuit(&r, NodeId(0), NodeId(3), 0).is_none());
        for want in [3, 5, 7] {
            let got = q.pop_for_circuit(&r, NodeId(0), NodeId(2), 0).unwrap();
            assert_eq!(got.dst, NodeId(want));
        }
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "undeclared class")]
    fn undeclared_class_panics() {
        let mut q = NodeQueues::new(&[]);
        q.push_class(ClassId(3), cell(1));
    }

    #[test]
    #[should_panic(expected = "undeclared class")]
    fn undeclared_class_below_table_len_panics() {
        // Class 2 is inside the index table (class 3 sizes it) but was
        // never declared — the sentinel must still reject it.
        let mut q = NodeQueues::new(&[ClassId(0), ClassId(3)]);
        q.push_class(ClassId(2), cell(1));
    }

    #[test]
    fn sparse_class_ids_resolve_through_the_table() {
        let classes = [ClassId(7), ClassId(2)];
        let mut q = NodeQueues::new(&classes);
        q.push_class(ClassId(7), cell(1));
        q.push_class(ClassId(2), cell(2));
        q.push_class(ClassId(2), cell(3));
        assert_eq!(q.class_depth(ClassId(7)), 1);
        assert_eq!(q.class_depth(ClassId(2)), 2);
        assert_eq!(q.class_depth(ClassId(0)), 0);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn drain_all_empties_everything() {
        let r = EvenClassRouter;
        let mut q = NodeQueues::new(r.classes());
        q.push_specific(NodeId(1), cell(1));
        q.push_specific(NodeId(2), cell(2));
        q.push_class(ClassId(0), cell(3));
        let drained = q.drain_all();
        assert_eq!(drained.len(), 3);
        assert!(q.is_empty());
        assert_eq!(q.specific_depth(NodeId(1)), 0);
        assert_eq!(q.class_depth(ClassId(0)), 0);
    }
}
