//! Per-node virtual output queues.
//!
//! Each node keeps one FIFO per *specific* next hop plus one FIFO per
//! router-defined *class* (spray queues). When a circuit to `w` comes up,
//! the node serves the specific queue for `w` first — targeted traffic has
//! strict priority, as in RotorLB-style designs — then scans class queues
//! in the router's priority order for a cell whose constraints admit `w`.

use crate::cell::Cell;
use crate::router::{ClassId, Router};
use sorn_topology::NodeId;
use std::collections::{HashMap, VecDeque};

/// The queue set of one node.
#[derive(Debug, Clone, Default)]
pub struct NodeQueues {
    specific: HashMap<u32, VecDeque<Cell>>,
    class: Vec<(ClassId, VecDeque<Cell>)>,
    depth: usize,
}

impl NodeQueues {
    /// Creates queues for a node, with one class FIFO per router class.
    pub fn new(classes: &[ClassId]) -> Self {
        NodeQueues {
            specific: HashMap::new(),
            class: classes.iter().map(|&c| (c, VecDeque::new())).collect(),
            depth: 0,
        }
    }

    /// Total queued cells at this node.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Enqueues a cell destined for a specific next hop.
    pub fn push_specific(&mut self, next: NodeId, cell: Cell) {
        self.specific.entry(next.0).or_default().push_back(cell);
        self.depth += 1;
    }

    /// Enqueues a cell into a spray class.
    ///
    /// # Panics
    /// Panics if the router never declared `class` — that is a scheme bug.
    pub fn push_class(&mut self, class: ClassId, cell: Cell) {
        let q = self
            .class
            .iter_mut()
            .find(|(c, _)| *c == class)
            .unwrap_or_else(|| panic!("router routed into undeclared class {class:?}"));
        q.1.push_back(cell);
        self.depth += 1;
    }

    /// Pops the cell to transmit on a circuit `from → to`, if any.
    ///
    /// `scan_limit` bounds how deep each class queue is searched for an
    /// admissible cell (`0` = unbounded). Head-of-line cells whose
    /// constraints reject `to` are skipped, not dropped.
    pub fn pop_for_circuit<R: Router + ?Sized>(
        &mut self,
        router: &R,
        from: NodeId,
        to: NodeId,
        scan_limit: usize,
    ) -> Option<Cell> {
        if let Some(q) = self.specific.get_mut(&to.0) {
            if let Some(cell) = q.pop_front() {
                self.depth -= 1;
                return Some(cell);
            }
        }
        for (class, q) in &mut self.class {
            let limit = if scan_limit == 0 {
                q.len()
            } else {
                scan_limit.min(q.len())
            };
            if let Some(pos) = q
                .iter()
                .take(limit)
                .position(|cell| router.class_admits(*class, cell, from, to))
            {
                let cell = q.remove(pos).expect("position within bounds");
                self.depth -= 1;
                return Some(cell);
            }
        }
        None
    }

    /// Drains every queued cell (used when re-routing after a schedule
    /// update); returns the cells in an arbitrary but deterministic order.
    pub fn drain_all(&mut self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.depth);
        let mut keys: Vec<u32> = self.specific.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            if let Some(q) = self.specific.get_mut(&k) {
                out.extend(q.drain(..));
            }
        }
        for (_, q) in &mut self.class {
            out.extend(q.drain(..));
        }
        self.depth = 0;
        out
    }

    /// Iterates every queued cell together with the specific next hop it
    /// waits for (`None` for class-queued cells). Order is unspecified;
    /// use for whole-queue accounting, not replay.
    pub fn iter_cells(&self) -> impl Iterator<Item = (Option<NodeId>, &Cell)> {
        self.specific
            .iter()
            .flat_map(|(&k, q)| q.iter().map(move |c| (Some(NodeId(k)), c)))
            .chain(
                self.class
                    .iter()
                    .flat_map(|(_, q)| q.iter().map(|c| (None, c))),
            )
    }

    /// Number of cells queued for a specific next hop.
    pub fn specific_depth(&self, next: NodeId) -> usize {
        self.specific.get(&next.0).map_or(0, |q| q.len())
    }

    /// Number of cells queued in a class.
    pub fn class_depth(&self, class: ClassId) -> usize {
        self.class
            .iter()
            .find(|(c, _)| *c == class)
            .map_or(0, |(_, q)| q.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::FlowId;

    fn cell(dst: u32) -> Cell {
        Cell {
            flow: FlowId(0),
            seq: 0,
            src: NodeId(0),
            dst: NodeId(dst),
            injected_ns: 0,
            hops: 0,
            tag: 0,
        }
    }

    /// A router whose single class admits only even-numbered targets.
    struct EvenClassRouter;
    impl Router for EvenClassRouter {
        fn decide(
            &self,
            _node: NodeId,
            _cell: &mut Cell,
            _rng: &mut rand::rngs::StdRng,
        ) -> crate::router::RouteDecision {
            crate::router::RouteDecision::ToClass(ClassId(0))
        }
        fn class_admits(&self, _c: ClassId, _cell: &Cell, _from: NodeId, to: NodeId) -> bool {
            to.0.is_multiple_of(2)
        }
        fn classes(&self) -> &[ClassId] {
            &[ClassId(0)]
        }
        fn max_hops(&self) -> u8 {
            4
        }
        fn name(&self) -> &str {
            "even"
        }
    }

    #[test]
    fn specific_queue_has_priority() {
        let r = EvenClassRouter;
        let mut q = NodeQueues::new(r.classes());
        q.push_class(ClassId(0), cell(9));
        q.push_specific(NodeId(2), cell(7));
        assert_eq!(q.depth(), 2);
        // Circuit to node 2: specific cell (dst 7) wins over class cell.
        let got = q.pop_for_circuit(&r, NodeId(0), NodeId(2), 0).unwrap();
        assert_eq!(got.dst, NodeId(7));
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn class_scan_skips_inadmissible_heads() {
        let r = EvenClassRouter;
        let mut q = NodeQueues::new(r.classes());
        q.push_class(ClassId(0), cell(1)); // any cell; admissibility is on `to`
                                           // Circuit to odd node: class rejects.
        assert!(q.pop_for_circuit(&r, NodeId(0), NodeId(3), 0).is_none());
        // Circuit to even node: admitted.
        assert!(q.pop_for_circuit(&r, NodeId(0), NodeId(4), 0).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn scan_limit_bounds_search() {
        /// Admits only cells whose dst equals the circuit target.
        struct PickyRouter;
        impl Router for PickyRouter {
            fn decide(
                &self,
                _n: NodeId,
                _c: &mut Cell,
                _r: &mut rand::rngs::StdRng,
            ) -> crate::router::RouteDecision {
                crate::router::RouteDecision::ToClass(ClassId(0))
            }
            fn class_admits(&self, _c: ClassId, cell: &Cell, _f: NodeId, to: NodeId) -> bool {
                cell.dst == to
            }
            fn classes(&self) -> &[ClassId] {
                &[ClassId(0)]
            }
            fn max_hops(&self) -> u8 {
                4
            }
            fn name(&self) -> &str {
                "picky"
            }
        }
        let r = PickyRouter;
        let mut q = NodeQueues::new(r.classes());
        q.push_class(ClassId(0), cell(5));
        q.push_class(ClassId(0), cell(6));
        // With scan limit 1 only the head (dst 5) is considered.
        assert!(q.pop_for_circuit(&r, NodeId(0), NodeId(6), 1).is_none());
        // Unbounded scan finds the second cell.
        let got = q.pop_for_circuit(&r, NodeId(0), NodeId(6), 0).unwrap();
        assert_eq!(got.dst, NodeId(6));
    }

    #[test]
    #[should_panic(expected = "undeclared class")]
    fn undeclared_class_panics() {
        let mut q = NodeQueues::new(&[]);
        q.push_class(ClassId(3), cell(1));
    }

    #[test]
    fn drain_all_empties_everything() {
        let r = EvenClassRouter;
        let mut q = NodeQueues::new(r.classes());
        q.push_specific(NodeId(1), cell(1));
        q.push_specific(NodeId(2), cell(2));
        q.push_class(ClassId(0), cell(3));
        let drained = q.drain_all();
        assert_eq!(drained.len(), 3);
        assert!(q.is_empty());
        assert_eq!(q.specific_depth(NodeId(1)), 0);
        assert_eq!(q.class_depth(ClassId(0)), 0);
    }
}
