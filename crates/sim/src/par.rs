//! A persistent worker pool for intra-slot parallelism.
//!
//! `Engine::step` runs its shardable passes (arrival routing, the
//! transmit walk) on this pool when `SimConfig::engine_threads > 1`.
//! Spawning threads per slot would swamp any win — a slot's work is
//! microseconds — so the pool keeps its workers alive for the life of
//! the engine and hands them one job (a set of shard indices) per pass.
//!
//! Std-only by design: the workspace forbids runtime dependencies, so
//! coordination is a `Mutex`/`Condvar` pair. The caller participates in
//! the work (a pool of `t` threads spawns `t − 1` workers), and `run`
//! does not return until every shard of the job has completed — that
//! barrier is what makes the scoped borrows in the job sound.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job visible to the workers: a shard-indexed closure plus claim and
/// completion counters. The closure reference is lifetime-erased; the
/// completion barrier in [`WorkerPool::run`] keeps it alive for as long
/// as any worker can touch it.
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    shards: usize,
    next: AtomicUsize,
    state: Mutex<JobState>,
    done: Condvar,
}

#[derive(Default)]
struct JobState {
    completed: usize,
    panicked: bool,
}

impl Job {
    /// Claims and runs shards until none remain; returns whether any
    /// shard panicked.
    fn work(&self) {
        loop {
            let shard = self.next.fetch_add(1, Ordering::Relaxed);
            if shard >= self.shards {
                return;
            }
            let panicked = catch_unwind(AssertUnwindSafe(|| (self.f)(shard))).is_err();
            let mut state = self.state.lock().expect("job state poisoned");
            state.completed += 1;
            state.panicked |= panicked;
            if state.completed == self.shards {
                self.done.notify_all();
            }
        }
    }
}

/// What the pool's mailbox currently holds.
struct Mailbox {
    /// Bumped per published job so sleeping workers can tell "new job"
    /// from a spurious wakeup.
    seq: u64,
    job: Option<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    mailbox: Mutex<Mailbox>,
    ready: Condvar,
}

/// A fixed-size pool of persistent workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool that runs jobs on `threads` threads total: `threads − 1`
    /// spawned workers plus the calling thread.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            mailbox: Mutex::new(Mailbox {
                seq: 0,
                job: None,
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
        }
    }

    /// Total threads jobs run on (workers + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0) .. f(shards - 1)` across the pool and the calling
    /// thread, returning only when every shard has finished.
    ///
    /// Shards are claimed dynamically, so `f` must not assume any
    /// shard-to-thread mapping; determinism has to come from the shards
    /// writing disjoint state (the engine's passes give each shard its
    /// own slice of nodes and its own scratch).
    ///
    /// # Panics
    /// Panics if any shard panicked (after all shards finished).
    pub fn run(&self, shards: usize, f: &(dyn Fn(usize) + Sync)) {
        if shards == 0 {
            return;
        }
        // SAFETY: the job (and thus this reference) is only invoked
        // between publication below and the completion barrier at the
        // end of this call; `f` outlives the call, so erasing its
        // lifetime never lets a worker see a dangling reference.
        let f: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Arc::new(Job {
            f,
            shards,
            next: AtomicUsize::new(0),
            state: Mutex::new(JobState::default()),
            done: Condvar::new(),
        });
        {
            let mut mailbox = self.shared.mailbox.lock().expect("pool mailbox poisoned");
            mailbox.seq += 1;
            mailbox.job = Some(Arc::clone(&job));
            self.shared.ready.notify_all();
        }
        // The caller works too — a 1-thread pool is just an inline loop.
        job.work();
        let mut state = job.state.lock().expect("job state poisoned");
        while state.completed < shards {
            state = job.done.wait(state).expect("job state poisoned");
        }
        // Retire the job so late-waking workers don't re-scan it.
        {
            let mut mailbox = self.shared.mailbox.lock().expect("pool mailbox poisoned");
            if mailbox
                .job
                .as_ref()
                .is_some_and(|current| Arc::ptr_eq(current, &job))
            {
                mailbox.job = None;
            }
        }
        assert!(!state.panicked, "a pool shard panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut mailbox = self.shared.mailbox.lock().expect("pool mailbox poisoned");
            mailbox.shutdown = true;
            self.shared.ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut last_seen = 0u64;
    loop {
        let job = {
            let mut mailbox = shared.mailbox.lock().expect("pool mailbox poisoned");
            loop {
                if mailbox.shutdown {
                    return;
                }
                if mailbox.seq != last_seen {
                    last_seen = mailbox.seq;
                    if let Some(job) = mailbox.job.clone() {
                        break job;
                    }
                }
                mailbox = shared.ready.wait(mailbox).expect("pool mailbox poisoned");
            }
        };
        job.work();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_shard_exactly_once() {
        let pool = WorkerPool::new(4);
        for round in 0..50 {
            let shards = 1 + round % 9;
            let hits: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
            pool.run(shards, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert!(pool.workers.is_empty());
        let sum = AtomicU64::new(0);
        pool.run(16, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn scoped_borrows_of_disjoint_slices_are_visible_after_run() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0u64; 32];
        let chunks: Vec<Mutex<Option<&mut [u64]>>> =
            data.chunks_mut(8).map(|c| Mutex::new(Some(c))).collect();
        pool.run(chunks.len(), &|i| {
            let mut guard = chunks[i].lock().unwrap();
            for (j, v) in guard.take().unwrap().iter_mut().enumerate() {
                *v = (i * 8 + j) as u64;
            }
        });
        drop(chunks);
        let want: Vec<u64> = (0..32).collect();
        assert_eq!(data, want);
    }

    #[test]
    fn shard_panic_surfaces_after_the_barrier() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a panicked job.
        let sum = AtomicU64::new(0);
        pool.run(4, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }
}
