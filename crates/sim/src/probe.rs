//! Instrumentation hooks for the simulation engine.
//!
//! The engine is generic over a [`Probe`] — a set of callbacks invoked at
//! the interesting points of a run: slot boundaries, cell delivery and
//! drop, flow start and finish, and schedule reconfiguration. The default
//! probe is [`NoopProbe`], whose empty inlined methods compile away
//! entirely, so uninstrumented simulations pay nothing for the hooks.
//!
//! Concrete probes (samplers, trace writers) live in `sorn-telemetry`;
//! this module only defines the contract so the engine stays free of any
//! serialization dependency.

use crate::cell::{Cell, Flow};
use crate::config::Nanos;
use crate::fault::FaultView;
use crate::metrics::{FlowRecord, Metrics};
use crate::queues::NodeQueues;
use crate::trace::HopEvent;
use sorn_topology::NodeId;

/// A read-only view of engine state handed to slot-boundary hooks.
///
/// The view borrows the engine's live [`Metrics`], so a probe can sample
/// any aggregate counter without the engine copying state it may not
/// need.
#[derive(Debug, Clone, Copy)]
pub struct SlotView<'a> {
    /// The slot that just completed (1-based: after the first slot this
    /// is 1, matching [`Metrics::slots`]).
    pub slot: u64,
    /// Start time of the slot that just completed.
    pub now_ns: Nanos,
    /// Aggregate metrics as of the end of the slot.
    pub metrics: &'a Metrics,
    /// Cells sitting in node queues right now.
    pub total_queued: usize,
    /// Cells propagating on circuits right now.
    pub inflight_cells: usize,
    /// Flows started but not yet fully delivered.
    pub active_flows: usize,
    /// Per-node queue sets, indexed by node id, for probes that need
    /// depth at finer grain than `total_queued`. May be empty when a
    /// view is synthesized outside the engine (tests, adapters).
    pub queues: &'a [NodeQueues],
}

impl SlotView<'_> {
    /// Cells queued at `node` right now (`0` if the view carries no
    /// per-node queues or `node` is out of range).
    pub fn queue_depth(&self, node: NodeId) -> usize {
        self.queues.get(node.index()).map_or(0, NodeQueues::depth)
    }
}

/// A batch of provably-quiet slots the engine fast-forwarded over in
/// one jump (see `Engine::fast_forward_to`).
///
/// `end` is exactly the [`SlotView`] the final slot of the span would
/// have produced through [`Probe::on_slot_end`]. The earlier slots in
/// the span were identical except for their slot number and start time:
/// slot `s` (for `s` in `end.slot - skipped + 1 ..= end.slot`) would
/// have seen `slot: s, now_ns: (s - 1) * slot_ns` and the same metrics
/// save for `slots`, `slots_skipped`, and `idle_circuit_slots`. A probe
/// that needs per-slot resolution can reconstruct every intermediate
/// view from these three fields without the engine walking the gap.
#[derive(Debug, Clone, Copy)]
pub struct SkipView<'a> {
    /// The view of the last slot in the skipped span, as
    /// [`Probe::on_slot_end`] would have delivered it.
    pub end: SlotView<'a>,
    /// How many slots the span covered (≥ 2; single quiet slots still go
    /// through [`Probe::on_slot_end`]).
    pub skipped: u64,
    /// Slot duration, for reconstructing intermediate `now_ns` values.
    pub slot_ns: Nanos,
}

/// Callbacks invoked by the engine as a simulation runs.
///
/// Every method has an empty default body, so a probe implements only
/// the events it cares about. The engine is monomorphized per probe
/// type; with [`NoopProbe`] the calls vanish at compile time.
pub trait Probe {
    /// Called at the end of every slot, after transmission and metric
    /// updates for that slot have completed.
    fn on_slot_end(&mut self, _view: &SlotView<'_>) {}

    /// Called instead of per-slot [`Probe::on_slot_end`] when the engine
    /// fast-forwards a span of quiet slots in one jump. The default
    /// delivers only the span's final view, which is exact for probes
    /// that sample the latest state; probes that accumulate per-slot
    /// state must override this to account for the whole span (every
    /// intermediate view is reconstructible from the [`SkipView`]).
    fn on_slots_skipped(&mut self, view: &SkipView<'_>) {
        self.on_slot_end(&view.end);
    }

    /// The next simulated time at which this probe must observe a slot
    /// boundary individually rather than as part of a batched span —
    /// e.g. an interval sampler's next mark. `Engine::fast_forward_to`
    /// never jumps past the first slot whose end view reaches this
    /// time, so a probe returning its mark here sees exactly the views
    /// per-slot stepping would have delivered at every mark. `None`
    /// (the default) means any span may be batched.
    fn next_boundary_ns(&self) -> Option<Nanos> {
        None
    }

    /// Called when a cell reaches its destination. `latency_ns` is the
    /// injection-to-delivery time of the cell.
    fn on_delivery(&mut self, _cell: &Cell, _latency_ns: Nanos, _now_ns: Nanos) {}

    /// Called when a cell is dropped at `node` because the node's queues
    /// are at the configured cap.
    fn on_drop(&mut self, _cell: &Cell, _node: NodeId, _now_ns: Nanos) {}

    /// Called once per cell transmission: `cell` left `from` on the
    /// circuit to `to` during the slot starting at `now_ns`. Fires on
    /// the merge thread in the engine's canonical `(node, uplink)`
    /// order, so the stream is byte-identical at any thread count.
    /// Unlike [`Probe::on_hop`] this fires for *every* cell, not just
    /// traced ones — it is the feed for link/port accounting probes.
    fn on_transmit(&mut self, _cell: &Cell, _from: NodeId, _to: NodeId, _now_ns: Nanos) {}

    /// Called when a flow arrives and begins injecting cells.
    fn on_flow_start(&mut self, _flow: &Flow, _now_ns: Nanos) {}

    /// Called when the last cell of a flow is delivered.
    fn on_flow_finish(&mut self, _record: &FlowRecord, _now_ns: Nanos) {}

    /// Called when a new circuit schedule is installed mid-run (the §5
    /// update operation). `slot` is the slot at which the swap happens.
    fn on_reconfiguration(&mut self, _slot: u64, _now_ns: Nanos) {}

    /// Called when a scripted [`FaultEvent`](crate::FaultEvent) from the
    /// engine's fault plan takes effect at a slot boundary.
    fn on_fault(&mut self, _view: &FaultView<'_>) {}

    /// Called once when the driver declares the run over (see
    /// `Engine::finish`). Probes that buffer state should emit their
    /// final snapshot here.
    fn on_run_end(&mut self, _view: &SlotView<'_>) {}

    /// Called for every span of a traced cell's journey when causal
    /// flow tracing is on (`SimConfig::trace_one_in > 0`). Events
    /// arrive in the engine's canonical order — node-ascending within
    /// each pass — so the stream is byte-identical at any thread count.
    /// Never called when tracing is off.
    fn on_hop(&mut self, _event: &HopEvent) {}
}

/// The default probe: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Forwarding impl so callers can hand the engine `&mut probe` and keep
/// ownership (e.g. to inspect the probe after the run without
/// `into_probe`).
impl<P: Probe> Probe for &mut P {
    fn on_slot_end(&mut self, view: &SlotView<'_>) {
        (**self).on_slot_end(view);
    }
    fn on_slots_skipped(&mut self, view: &SkipView<'_>) {
        (**self).on_slots_skipped(view);
    }
    fn next_boundary_ns(&self) -> Option<Nanos> {
        (**self).next_boundary_ns()
    }
    fn on_delivery(&mut self, cell: &Cell, latency_ns: Nanos, now_ns: Nanos) {
        (**self).on_delivery(cell, latency_ns, now_ns);
    }
    fn on_drop(&mut self, cell: &Cell, node: NodeId, now_ns: Nanos) {
        (**self).on_drop(cell, node, now_ns);
    }
    fn on_transmit(&mut self, cell: &Cell, from: NodeId, to: NodeId, now_ns: Nanos) {
        (**self).on_transmit(cell, from, to, now_ns);
    }
    fn on_flow_start(&mut self, flow: &Flow, now_ns: Nanos) {
        (**self).on_flow_start(flow, now_ns);
    }
    fn on_flow_finish(&mut self, record: &FlowRecord, now_ns: Nanos) {
        (**self).on_flow_finish(record, now_ns);
    }
    fn on_reconfiguration(&mut self, slot: u64, now_ns: Nanos) {
        (**self).on_reconfiguration(slot, now_ns);
    }
    fn on_fault(&mut self, view: &FaultView<'_>) {
        (**self).on_fault(view);
    }
    fn on_run_end(&mut self, view: &SlotView<'_>) {
        (**self).on_run_end(view);
    }
    fn on_hop(&mut self, event: &HopEvent) {
        (**self).on_hop(event);
    }
}

/// Pairs two probes into one: every hook fires on `A` first, then `B`.
/// Nest tuples to stack any number of observers on one engine without a
/// bespoke combinator type — `(live, (tracer, recorder))`.
impl<A: Probe, B: Probe> Probe for (A, B) {
    fn on_slot_end(&mut self, view: &SlotView<'_>) {
        self.0.on_slot_end(view);
        self.1.on_slot_end(view);
    }
    fn on_slots_skipped(&mut self, view: &SkipView<'_>) {
        self.0.on_slots_skipped(view);
        self.1.on_slots_skipped(view);
    }
    fn next_boundary_ns(&self) -> Option<Nanos> {
        match (self.0.next_boundary_ns(), self.1.next_boundary_ns()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
    fn on_delivery(&mut self, cell: &Cell, latency_ns: Nanos, now_ns: Nanos) {
        self.0.on_delivery(cell, latency_ns, now_ns);
        self.1.on_delivery(cell, latency_ns, now_ns);
    }
    fn on_drop(&mut self, cell: &Cell, node: NodeId, now_ns: Nanos) {
        self.0.on_drop(cell, node, now_ns);
        self.1.on_drop(cell, node, now_ns);
    }
    fn on_transmit(&mut self, cell: &Cell, from: NodeId, to: NodeId, now_ns: Nanos) {
        self.0.on_transmit(cell, from, to, now_ns);
        self.1.on_transmit(cell, from, to, now_ns);
    }
    fn on_flow_start(&mut self, flow: &Flow, now_ns: Nanos) {
        self.0.on_flow_start(flow, now_ns);
        self.1.on_flow_start(flow, now_ns);
    }
    fn on_flow_finish(&mut self, record: &FlowRecord, now_ns: Nanos) {
        self.0.on_flow_finish(record, now_ns);
        self.1.on_flow_finish(record, now_ns);
    }
    fn on_reconfiguration(&mut self, slot: u64, now_ns: Nanos) {
        self.0.on_reconfiguration(slot, now_ns);
        self.1.on_reconfiguration(slot, now_ns);
    }
    fn on_fault(&mut self, view: &FaultView<'_>) {
        self.0.on_fault(view);
        self.1.on_fault(view);
    }
    fn on_run_end(&mut self, view: &SlotView<'_>) {
        self.0.on_run_end(view);
        self.1.on_run_end(view);
    }
    fn on_hop(&mut self, event: &HopEvent) {
        self.0.on_hop(event);
        self.1.on_hop(event);
    }
}

/// A probe that may not be there: `None` observes nothing. Lets a
/// binary decide at runtime whether to attach an observer while the
/// engine stays monomorphized over one composed probe type.
impl<P: Probe> Probe for Option<P> {
    fn on_slot_end(&mut self, view: &SlotView<'_>) {
        if let Some(p) = self {
            p.on_slot_end(view);
        }
    }
    fn on_slots_skipped(&mut self, view: &SkipView<'_>) {
        if let Some(p) = self {
            p.on_slots_skipped(view);
        }
    }
    fn next_boundary_ns(&self) -> Option<Nanos> {
        self.as_ref().and_then(Probe::next_boundary_ns)
    }
    fn on_delivery(&mut self, cell: &Cell, latency_ns: Nanos, now_ns: Nanos) {
        if let Some(p) = self {
            p.on_delivery(cell, latency_ns, now_ns);
        }
    }
    fn on_drop(&mut self, cell: &Cell, node: NodeId, now_ns: Nanos) {
        if let Some(p) = self {
            p.on_drop(cell, node, now_ns);
        }
    }
    fn on_transmit(&mut self, cell: &Cell, from: NodeId, to: NodeId, now_ns: Nanos) {
        if let Some(p) = self {
            p.on_transmit(cell, from, to, now_ns);
        }
    }
    fn on_flow_start(&mut self, flow: &Flow, now_ns: Nanos) {
        if let Some(p) = self {
            p.on_flow_start(flow, now_ns);
        }
    }
    fn on_flow_finish(&mut self, record: &FlowRecord, now_ns: Nanos) {
        if let Some(p) = self {
            p.on_flow_finish(record, now_ns);
        }
    }
    fn on_reconfiguration(&mut self, slot: u64, now_ns: Nanos) {
        if let Some(p) = self {
            p.on_reconfiguration(slot, now_ns);
        }
    }
    fn on_fault(&mut self, view: &FaultView<'_>) {
        if let Some(p) = self {
            p.on_fault(view);
        }
    }
    fn on_run_end(&mut self, view: &SlotView<'_>) {
        if let Some(p) = self {
            p.on_run_end(view);
        }
    }
    fn on_hop(&mut self, event: &HopEvent) {
        if let Some(p) = self {
            p.on_hop(event);
        }
    }
}
