//! Causal flow tracing: deterministic sampling and hop-by-hop spans.
//!
//! A traced run follows a *sampled subset* of flows through every hop:
//! the routing decision and queue entry (with queue depth and the
//! schedule-implied wait for the chosen circuit), the transmit onto a
//! link, and the final delivery. Sampling is a pure function of the run
//! seed and the flow id — it never draws from the per-node routing
//! streams ([`crate::NodeRng`]) — so enabling tracing cannot perturb a
//! simulation, and the traced set is identical at any
//! `SimConfig::engine_threads`.
//!
//! Hop events produced inside the engine's sharded passes are buffered
//! per shard and merged in canonical node-ascending order, exactly like
//! deliveries and drops, so the event stream a probe observes is
//! byte-identical between serial and parallel runs.

use crate::cell::{Cell, FlowId};
use crate::config::Nanos;
use crate::rng::mix;
use sorn_topology::{CircuitSchedule, NodeId};

/// Sentinel for [`HopKind::Enqueue::circuit_wait_slots`] when the
/// schedule never brings up a circuit toward the chosen next hop.
pub const CIRCUIT_NEVER: u32 = u32::MAX;

/// Deterministic flow-sampling decision, keyed by `(seed, flow id)`.
///
/// `one_in = k` traces roughly one flow in `k` (exactly: the flows whose
/// mixed key lands in the lowest `1/k` of the hash space). `one_in = 1`
/// traces everything. The decision is stateless, so every shard — and
/// every re-run at a different thread count — agrees on the traced set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSampler {
    key: u64,
    /// Inclusive upper bound on the mixed hash for a traced flow.
    threshold: u64,
}

impl FlowSampler {
    /// Samples one flow in `one_in` under `seed`.
    ///
    /// # Panics
    /// Panics if `one_in` is zero (use `Option<FlowSampler>` — or
    /// `SimConfig::trace_one_in = 0` — for "tracing off").
    pub fn new(seed: u64, one_in: u64) -> Self {
        assert!(one_in > 0, "sampling rate must be positive");
        FlowSampler {
            // Decorrelate from the routing streams: they key on
            // mix(mix(seed) ^ ...), this keys on mix(seed ^ !0).
            key: mix(seed ^ u64::MAX),
            threshold: u64::MAX / one_in,
        }
    }

    /// True when `flow` belongs to the traced subset.
    #[inline]
    pub fn is_traced(&self, flow: FlowId) -> bool {
        mix(self.key ^ flow.0) <= self.threshold
    }
}

/// What happened to a traced cell at one point of its journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// The router picked a next hop (or spray class) and the cell
    /// entered the node's queues.
    Enqueue {
        /// Chosen next hop; `None` when the cell went to a spray class
        /// queue (any admissible circuit may carry it).
        next: Option<NodeId>,
        /// Node queue depth right after the push (this cell included).
        depth: usize,
        /// Slots until the schedule first brings up a circuit toward
        /// `next`, counted from the slot of the enqueue. `0` for class
        /// queues (some admissible circuit is assumed reachable) and
        /// [`CIRCUIT_NEVER`] when the schedule never connects the pair.
        /// This is the *unavoidable* reconfiguration wait; any extra
        /// time in queue is contention.
        circuit_wait_slots: u32,
    },
    /// The cell was popped from the queue and put on a circuit.
    Transmit {
        /// Receiving node of the circuit.
        to: NodeId,
        /// Node queue depth right after the pop (this cell excluded).
        depth_after: usize,
    },
    /// The cell reached its destination.
    Deliver {
        /// Injection-to-delivery time of the cell.
        latency_ns: Nanos,
    },
    /// The cell was shed (full queue or router decision).
    Drop,
}

/// One hop-by-hop span event for a traced cell.
///
/// Events for one cell always appear in causal order; across cells the
/// stream follows the engine's canonical order (node-ascending within
/// each pass), so it is identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopEvent {
    /// The traced flow.
    pub flow: FlowId,
    /// Cell sequence number within the flow.
    pub seq: u64,
    /// Node where the event happened.
    pub node: NodeId,
    /// Simulated time of the event (slot start for queue/transmit
    /// events, arrival time for deliveries).
    pub at_ns: Nanos,
    /// Injection time of the cell (every span of a cell carries it, so
    /// consumers never need to join against a separate injection log).
    pub injected_ns: Nanos,
    /// Hops the cell had taken when the event fired.
    pub hops: u8,
    /// The event itself.
    pub kind: HopKind,
}

/// Slots until the schedule first connects `v -> w`, counted from
/// `slot` inclusive, considering all `uplinks` staggered planes.
/// Returns [`CIRCUIT_NEVER`] if no plane ever provides the circuit
/// (the scan is bounded by one schedule period).
pub fn circuit_wait_slots(
    schedule: &CircuitSchedule,
    slot: u64,
    uplinks: usize,
    v: NodeId,
    w: NodeId,
) -> u32 {
    let period = schedule.period() as u64;
    for d in 0..period {
        for uplink in 0..uplinks {
            let offset = (uplink as u64 * period) / uplinks as u64;
            if schedule.matching_at(slot + d + offset).dst_of(v) == Some(w) {
                return d as u32;
            }
        }
    }
    CIRCUIT_NEVER
}

impl HopEvent {
    /// Compact single-line debug rendering used by golden tests; stable
    /// across platforms (pure integer formatting).
    pub fn render(&self) -> String {
        let head = format!(
            "f{} c{} n{} t{} i{} h{}",
            self.flow.0, self.seq, self.node.0, self.at_ns, self.injected_ns, self.hops
        );
        match self.kind {
            HopKind::Enqueue {
                next,
                depth,
                circuit_wait_slots,
            } => {
                let nx = match next {
                    Some(n) => format!("{}", n.0),
                    None => "class".to_string(),
                };
                format!("{head} ENQ next={nx} depth={depth} wait={circuit_wait_slots}")
            }
            HopKind::Transmit { to, depth_after } => {
                format!("{head} TX to={} depth={depth_after}", to.0)
            }
            HopKind::Deliver { latency_ns } => format!("{head} DLV lat={latency_ns}"),
            HopKind::Drop => format!("{head} DROP"),
        }
    }

    /// Helper used at every engine emission site: builds the event from
    /// the cell it describes.
    #[inline]
    pub(crate) fn for_cell(cell: &Cell, node: NodeId, at_ns: Nanos, kind: HopKind) -> Self {
        HopEvent {
            flow: cell.flow,
            seq: cell.seq,
            node,
            at_ns,
            injected_ns: cell.injected_ns,
            hops: cell.hops,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_topology::builders::round_robin;

    #[test]
    fn sampling_is_pure_and_seed_dependent() {
        let s = FlowSampler::new(7, 4);
        let t = FlowSampler::new(7, 4);
        for id in 0..256u64 {
            assert_eq!(s.is_traced(FlowId(id)), t.is_traced(FlowId(id)));
        }
        let other = FlowSampler::new(8, 4);
        let same: usize = (0..4096u64)
            .filter(|&id| s.is_traced(FlowId(id)) == other.is_traced(FlowId(id)))
            .count();
        assert!(same < 4096, "different seeds must sample differently");
    }

    #[test]
    fn sampling_rate_is_roughly_one_in_k() {
        let s = FlowSampler::new(42, 8);
        let hits = (0..80_000u64).filter(|&id| s.is_traced(FlowId(id))).count();
        // Expect ~10_000; allow wide slack (hash, not RNG).
        assert!((8_000..12_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn one_in_one_traces_everything() {
        let s = FlowSampler::new(3, 1);
        assert!((0..1000u64).all(|id| s.is_traced(FlowId(id))));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        FlowSampler::new(0, 0);
    }

    #[test]
    fn circuit_wait_matches_round_robin_rotation() {
        // round_robin(4): matching at slot s connects v -> v + (s % 3) + 1.
        let sched = round_robin(4).unwrap();
        // 0 -> 1 is up at slot 0: wait 0 from slot 0.
        assert_eq!(circuit_wait_slots(&sched, 0, 1, NodeId(0), NodeId(1)), 0);
        // 0 -> 3 comes up at slot 2: wait 2 from slot 0, 0 from slot 2.
        assert_eq!(circuit_wait_slots(&sched, 0, 1, NodeId(0), NodeId(3)), 2);
        assert_eq!(circuit_wait_slots(&sched, 2, 1, NodeId(0), NodeId(3)), 0);
        // A self-circuit never exists.
        assert_eq!(
            circuit_wait_slots(&sched, 0, 1, NodeId(0), NodeId(0)),
            CIRCUIT_NEVER
        );
    }

    #[test]
    fn staggered_uplinks_shrink_the_wait() {
        let sched = round_robin(4).unwrap();
        // With 3 planes (one per distinct matching) every circuit is up
        // every slot.
        for w in 1..4u32 {
            assert_eq!(circuit_wait_slots(&sched, 0, 3, NodeId(0), NodeId(w)), 0);
        }
    }

    #[test]
    fn render_is_stable() {
        let ev = HopEvent {
            flow: FlowId(9),
            seq: 2,
            node: NodeId(3),
            at_ns: 700,
            injected_ns: 100,
            hops: 1,
            kind: HopKind::Enqueue {
                next: Some(NodeId(5)),
                depth: 4,
                circuit_wait_slots: 2,
            },
        };
        assert_eq!(
            ev.render(),
            "f9 c2 n3 t700 i100 h1 ENQ next=5 depth=4 wait=2"
        );
    }
}
