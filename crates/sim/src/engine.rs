//! The slot-synchronous simulation engine.
//!
//! Each slot, every node's uplinks are connected according to the (phase-
//! staggered) circuit schedule; a node transmits at most one cell per
//! uplink into the circuit that is up. Cells propagate with a fixed delay
//! and are re-routed (or delivered) on arrival. Flow arrivals inject cells
//! at source NICs at line rate.
//!
//! The engine is fully deterministic: a single seeded RNG drives every
//! routing decision, nodes are visited in id order, and in-flight cells
//! arrive in transmission order (the calendar ring preserves the
//! `(arrival time, insertion sequence)` order a heap would impose).
//!
//! The hot path is built on dense, index-addressed state: per-next-hop
//! queues indexed by node id, a flat per-link transmission matrix, a
//! slot-bucketed arrival calendar, and a slab of active flows — no
//! hashing or heap rebalancing per transmitted cell.

use crate::calendar::SlotCalendar;
use crate::cell::{Cell, Flow, FlowId};
use crate::config::{Nanos, SimConfig};
use crate::failure::FailureSet;
use crate::fault::{FaultPlan, FaultView, LinkHealth};
use crate::hash::FastHashBuilder;
use crate::metrics::{FlowRecord, LinkMatrix, Metrics};
use crate::probe::{NoopProbe, Probe, SlotView};
use crate::profiler::{NoopProfiler, Phase, Profiler};
use crate::queues::NodeQueues;
use crate::router::{RouteDecision, Router};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sorn_topology::{CircuitSchedule, NodeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

/// Errors surfaced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A cell exceeded the router's hop bound — a routing bug.
    HopBoundExceeded {
        /// The offending flow.
        flow: FlowId,
        /// Hops taken.
        hops: u8,
        /// The router's declared bound.
        bound: u8,
    },
    /// A flow references a node outside the schedule.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Network size.
        n: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::HopBoundExceeded { flow, hops, bound } => write!(
                f,
                "flow {flow:?}: cell took {hops} hops, exceeding the router bound {bound}"
            ),
            SimError::NodeOutOfRange { node, n } => {
                write!(f, "flow endpoint {node} outside network of {n} nodes")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Tracks a flow that is still injecting or still has cells in flight.
#[derive(Debug, Clone)]
struct ActiveFlow {
    flow: Flow,
    total_cells: u64,
    injected: u64,
    delivered: u64,
    max_hops: u8,
}

/// An in-flight cell arriving at a node.
///
/// Ordering lives in the calendar ring: cells transmitted in slot `s`
/// all mature a fixed number of slots later and drain FIFO, which is
/// exactly the `(at_ns, insertion seq)` order the old heap imposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arrival {
    at_ns: Nanos,
    node: NodeId,
    cell: Cell,
}

/// The simulation engine.
///
/// Generic over a [`Probe`] for instrumentation and a [`Profiler`]
/// for self-profiling; the defaults ([`NoopProbe`], [`NoopProfiler`])
/// compile both away, so `Engine::new` builds an uninstrumented
/// engine with zero overhead. Use [`Engine::with_probe`] to attach a
/// real probe and [`Engine::with_probe_and_profiler`] to also time
/// the engine's own phases.
pub struct Engine<'a, P: Probe = NoopProbe, F: Profiler = NoopProfiler> {
    cfg: SimConfig,
    schedule: &'a CircuitSchedule,
    router: &'a dyn Router,
    queues: Vec<NodeQueues>,
    /// Flows not yet arrived, sorted by arrival time; keys index
    /// `future_store`.
    future_flows: BinaryHeap<Reverse<(Nanos, u64)>>,
    /// Pending flows in add order; activation `take`s them out.
    future_store: Vec<Option<Flow>>,
    future_pending: usize,
    /// Flows currently injecting, per source node (FIFO per node);
    /// entries are slots into `active`.
    injecting: Vec<VecDeque<usize>>,
    injecting_flows: usize,
    /// Active-flow slab; freed slots are reused via `active_free`.
    active: Vec<Option<ActiveFlow>>,
    active_free: Vec<usize>,
    /// `FlowId → slab slot`, consulted once per delivered cell (hence
    /// the fast unkeyed hasher — ids are simulation-assigned).
    active_index: HashMap<FlowId, usize, FastHashBuilder>,
    inflight: SlotCalendar<Arrival>,
    /// Cells sitting in node queues, maintained incrementally so
    /// `total_queued`/`is_drained` are O(1) (debug builds re-count).
    queued_cells: usize,
    failures: FailureSet,
    fault_plan: FaultPlan,
    fault_cursor: usize,
    health_mirror: Option<LinkHealth>,
    episode: EpisodeState,
    rng: StdRng,
    metrics: Metrics,
    slot: u64,
    probe: P,
    profiler: F,
}

/// Tracks the failure episode the engine is in, for time-to-recover.
#[derive(Debug, Clone, Copy, Default)]
struct EpisodeState {
    /// Total queue depth when the current episode began.
    onset_queued: usize,
    /// Set while at least one element is failed.
    degraded: bool,
    /// After full restoration: the restore time, awaiting queue recovery.
    awaiting_recovery_since: Option<Nanos>,
}

impl<'a> Engine<'a, NoopProbe, NoopProfiler> {
    /// Creates an uninstrumented engine over a schedule and routing
    /// scheme.
    pub fn new(cfg: SimConfig, schedule: &'a CircuitSchedule, router: &'a dyn Router) -> Self {
        Engine::with_probe(cfg, schedule, router, NoopProbe)
    }
}

impl<'a, P: Probe> Engine<'a, P, NoopProfiler> {
    /// Creates an engine whose run is observed by `probe`.
    pub fn with_probe(
        cfg: SimConfig,
        schedule: &'a CircuitSchedule,
        router: &'a dyn Router,
        probe: P,
    ) -> Self {
        Engine::with_probe_and_profiler(cfg, schedule, router, probe, NoopProfiler)
    }
}

impl<'a, P: Probe, F: Profiler> Engine<'a, P, F> {
    /// Creates an engine observed by `probe` whose own phase timings
    /// go to `profiler`.
    pub fn with_probe_and_profiler(
        cfg: SimConfig,
        schedule: &'a CircuitSchedule,
        router: &'a dyn Router,
        probe: P,
        profiler: F,
    ) -> Self {
        let n = schedule.n();
        assert!(cfg.slot_ns > 0, "slot_ns must be positive");
        // Fixed propagation: every cell transmitted in slot `s` is
        // processed at the start of slot `s + delay_slots`.
        let delay_slots = (cfg.slot_ns + cfg.propagation_ns).div_ceil(cfg.slot_ns);
        Engine {
            rng: StdRng::seed_from_u64(cfg.seed),
            schedule,
            router,
            queues: (0..n)
                .map(|_| NodeQueues::new(n, router.classes()))
                .collect(),
            future_flows: BinaryHeap::new(),
            future_store: Vec::new(),
            future_pending: 0,
            injecting: vec![VecDeque::new(); n],
            injecting_flows: 0,
            active: Vec::new(),
            active_free: Vec::new(),
            active_index: HashMap::default(),
            inflight: SlotCalendar::new(delay_slots),
            queued_cells: 0,
            failures: FailureSet::none(),
            fault_plan: FaultPlan::new(),
            fault_cursor: 0,
            health_mirror: None,
            episode: EpisodeState::default(),
            metrics: Metrics {
                link_transmissions: LinkMatrix::with_nodes(n),
                ..Metrics::default()
            },
            slot: 0,
            probe,
            profiler,
            cfg,
        }
    }

    /// Shared access to the attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Shared access to the attached profiler. Handle-style profilers
    /// (the telemetry wall-clock one) can also be read through a clone
    /// kept by the caller.
    pub fn profiler(&self) -> &F {
        &self.profiler
    }

    /// Mutable access to the attached probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Declares the run over: fires [`Probe::on_run_end`] with a final
    /// state view and returns the probe. Call after the last
    /// `run_until_drained`/`run_slots` so buffering probes (samplers,
    /// trace sinks) can emit their closing snapshot.
    pub fn finish(mut self) -> P {
        self.metrics.stranded_cells = self.count_stranded();
        self.probe.on_run_end(&SlotView {
            slot: self.slot,
            now_ns: self.cfg.slot_start(self.slot),
            metrics: &self.metrics,
            total_queued: self.total_queued(),
            inflight_cells: self.inflight.len(),
        });
        self.probe
    }

    /// Queues flows for future arrival.
    pub fn add_flows(&mut self, flows: impl IntoIterator<Item = Flow>) -> Result<(), SimError> {
        let n = self.schedule.n();
        for f in flows {
            for node in [f.src, f.dst] {
                if node.index() >= n {
                    return Err(SimError::NodeOutOfRange { node, n });
                }
            }
            let key = self.future_store.len() as u64;
            self.future_flows.push(Reverse((f.arrival_ns, key)));
            self.future_store.push(Some(f));
            self.future_pending += 1;
        }
        Ok(())
    }

    /// Mutable access to the failure set (§6 blast-radius experiments).
    ///
    /// Manual pokes bypass the fault plan: no `on_fault` hook fires, no
    /// episode is tracked, and an attached health mirror is not
    /// republished until the next scripted event. Prefer
    /// [`Engine::set_fault_plan`] for timed failures.
    pub fn failures_mut(&mut self) -> &mut FailureSet {
        &mut self.failures
    }

    /// Shared access to the failure set.
    pub fn failures(&self) -> &FailureSet {
        &self.failures
    }

    /// Installs a timed fail/restore script. Events whose `at_ns` has
    /// been reached are applied at the start of each slot, in order,
    /// firing [`Probe::on_fault`] per event. Replaces any prior plan
    /// (its unapplied events are discarded).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
        self.fault_cursor = 0;
    }

    /// Attaches a health view that mirrors the engine's failure set.
    /// Published immediately and after every applied fault event, so
    /// failure-aware routers and the control plane share one picture of
    /// what is down.
    pub fn set_health_mirror(&mut self, health: LinkHealth) {
        health.publish(&self.failures);
        self.health_mirror = Some(health);
    }

    /// Collected metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current slot number.
    pub fn now_slot(&self) -> u64 {
        self.slot
    }

    /// Total cells sitting in node queues. O(1): the engine maintains
    /// the count as cells are pushed and popped; debug builds assert it
    /// against the O(n) per-node recount.
    pub fn total_queued(&self) -> usize {
        debug_assert_eq!(
            self.queued_cells,
            self.queues.iter().map(|q| q.depth()).sum::<usize>(),
            "queued-cell counter must match the per-node recount"
        );
        self.queued_cells
    }

    /// True when no traffic remains anywhere in the system. O(1).
    pub fn is_drained(&self) -> bool {
        self.future_pending == 0
            && self.inflight.is_empty()
            && self.total_queued() == 0
            && self.injecting_flows == 0
    }

    /// Runs `slots` more slots.
    pub fn run_slots(&mut self, slots: u64) -> Result<(), SimError> {
        for _ in 0..slots {
            self.step()?;
        }
        Ok(())
    }

    /// Runs until all traffic drains or `max_slots` elapse; returns `true`
    /// when fully drained.
    pub fn run_until_drained(&mut self, max_slots: u64) -> Result<bool, SimError> {
        let deadline = self.slot + max_slots;
        while self.slot < deadline {
            if self.is_drained() {
                return Ok(true);
            }
            self.step()?;
        }
        // One more check: the last step may have drained the system.
        Ok(self.is_drained())
    }

    /// Advances one slot: deliveries, arrivals, injection, transmission.
    pub fn step(&mut self) -> Result<(), SimError> {
        let now = self.cfg.slot_start(self.slot);

        // 0. Scripted fault events due by this slot boundary take effect
        // before any routing, so this slot already sees the new health.
        {
            let _span = self.profiler.span(Phase::FaultApply);
            self.apply_due_faults(now);
        }

        // 1. Cells that have landed by the start of this slot.
        while let Some(arrival) = self.inflight.pop_due(self.slot) {
            debug_assert!(arrival.at_ns <= now, "calendar released a cell early");
            self.handle_arrival(arrival)?;
        }

        // 2. Newly arrived flows begin injecting.
        let enqueue_span = self.profiler.span(Phase::Enqueue);
        while let Some(Reverse((t, _key))) = self.future_flows.peek() {
            if *t > now {
                break;
            }
            let (_, key) = self.future_flows.pop().expect("peeked").0;
            let flow = self.future_store[key as usize].take().expect("stored flow");
            self.future_pending -= 1;
            let total_cells = flow.cell_count(self.cfg.cell_bytes);
            self.probe.on_flow_start(&flow, now);
            let src = flow.src.index();
            let id = flow.id;
            let af = ActiveFlow {
                flow,
                total_cells,
                injected: 0,
                delivered: 0,
                max_hops: 0,
            };
            let slot = match self.active_free.pop() {
                Some(free) => {
                    self.active[free] = Some(af);
                    free
                }
                None => {
                    self.active.push(Some(af));
                    self.active.len() - 1
                }
            };
            self.active_index.insert(id, slot);
            self.injecting[src].push_back(slot);
            self.injecting_flows += 1;
        }
        drop(enqueue_span);

        // 3. Source NICs inject at line rate (uplinks cells per slot).
        // Not bracketed as a whole: each injected cell is timed inside
        // `route_cell`, and wrapping the loop too would double-count.
        // The flow counter skips the per-node scan entirely during
        // injection-free stretches (e.g. the drain tail of a run).
        for src in 0..self.queues.len() {
            if self.injecting_flows == 0 {
                break;
            }
            let mut budget = self.cfg.uplinks;
            while budget > 0 {
                let Some(&slot) = self.injecting[src].front() else {
                    break;
                };
                let af = self.active[slot].as_mut().expect("active flow");
                let cell = Cell {
                    flow: af.flow.id,
                    seq: af.injected,
                    src: af.flow.src,
                    dst: af.flow.dst,
                    injected_ns: now,
                    hops: 0,
                    tag: 0,
                };
                af.injected += 1;
                let done_injecting = af.injected >= af.total_cells;
                let flow_src = af.flow.src;
                self.metrics.injected_cells += 1;
                self.route_cell(flow_src, cell, now)?;
                if done_injecting {
                    self.injecting[src].pop_front();
                    self.injecting_flows -= 1;
                }
                budget -= 1;
            }
        }

        // 4. Transmit one cell per uplink per node along the schedule.
        let transmit_span = self.profiler.span(Phase::Transmit);
        let period = self.schedule.period() as u64;
        // Hoisted out of the per-node loop: the active matching (one
        // `t % period` resolution per uplink instead of per port) and
        // the all-healthy fast path (skips three hash probes per port
        // when nothing has failed — the common case).
        let schedule = self.schedule;
        let healthy = self.failures.is_empty();
        for uplink in 0..self.cfg.uplinks {
            let offset = (uplink as u64 * period) / self.cfg.uplinks as u64;
            let t = self.slot + offset;
            let matching = schedule.matching_at(t);
            for v in 0..self.queues.len() {
                let v = NodeId(v as u32);
                let Some(w) = matching.dst_of(v) else {
                    continue; // idle port this slot
                };
                if !healthy && !self.failures.circuit_up(v, w) {
                    continue;
                }
                match self.queues[v.index()].pop_for_circuit(
                    self.router,
                    v,
                    w,
                    self.cfg.class_scan_limit,
                ) {
                    Some(mut cell) => {
                        self.queued_cells -= 1;
                        self.router.on_transmit(&mut cell, v, w);
                        cell.hops += 1;
                        if cell.hops > self.router.max_hops() {
                            return Err(SimError::HopBoundExceeded {
                                flow: cell.flow,
                                hops: cell.hops,
                                bound: self.router.max_hops(),
                            });
                        }
                        self.metrics.transmissions += 1;
                        self.metrics.link_transmissions.record(v.0, w.0);
                        let at_ns = now + self.cfg.slot_ns + self.cfg.propagation_ns;
                        self.inflight.push(
                            self.slot,
                            Arrival {
                                at_ns,
                                node: w,
                                cell,
                            },
                        );
                    }
                    None => self.metrics.idle_circuit_slots += 1,
                }
            }
        }
        drop(transmit_span);

        let queued = self.total_queued();
        self.metrics.peak_queue_depth = self.metrics.peak_queue_depth.max(queued);
        if !self.failures.is_empty() {
            self.metrics.failure_slots += 1;
        }
        if let Some(restored_at) = self.episode.awaiting_recovery_since {
            if queued <= self.episode.onset_queued {
                self.metrics
                    .recovery_times_ns
                    .push(now.saturating_sub(restored_at));
                self.episode.awaiting_recovery_since = None;
            }
        }
        self.slot += 1;
        self.metrics.slots = self.slot;
        self.probe.on_slot_end(&SlotView {
            slot: self.slot,
            now_ns: now,
            metrics: &self.metrics,
            total_queued: queued,
            inflight_cells: self.inflight.len(),
        });
        Ok(())
    }

    /// Applies every scripted fault event due by `now`, firing the
    /// probe's `on_fault` hook per event and maintaining the failure-
    /// episode bookkeeping behind the recovery-time metric.
    fn apply_due_faults(&mut self, now: Nanos) {
        let mut applied = false;
        while let Some(&event) = self.fault_plan.events().get(self.fault_cursor) {
            if event.at_ns > now {
                break;
            }
            self.fault_cursor += 1;
            let was_healthy = self.failures.is_empty();
            event.apply(&mut self.failures);
            applied = true;
            if was_healthy && !self.failures.is_empty() {
                self.metrics.failure_episodes += 1;
                self.episode.degraded = true;
                self.episode.onset_queued = self.total_queued();
                self.episode.awaiting_recovery_since = None;
            } else if !was_healthy && self.failures.is_empty() {
                self.episode.degraded = false;
                self.episode.awaiting_recovery_since = Some(now);
            }
            self.probe.on_fault(&FaultView {
                event: &event,
                slot: self.slot,
                now_ns: now,
                failed_nodes: self.failures.failed_nodes(),
                failed_links: self.failures.failed_links(),
            });
        }
        if applied {
            if let Some(health) = &self.health_mirror {
                health.publish(&self.failures);
            }
        }
    }

    /// Cells currently propagating on circuits.
    pub fn inflight_cells(&self) -> usize {
        self.inflight.len()
    }

    /// Counts queued cells that cannot make progress under the current
    /// failure set: cells whose destination node is failed, and cells
    /// waiting on a specific next hop whose circuit is down. Class-queued
    /// cells with a live destination are not stranded — any admissible
    /// circuit can still carry them.
    pub fn count_stranded(&self) -> u64 {
        if self.failures.is_empty() {
            return 0;
        }
        let mut stranded = 0u64;
        for (v, queues) in self.queues.iter().enumerate() {
            let v = NodeId(v as u32);
            for (next, cell) in queues.iter_cells() {
                let dead_dst = self.failures.node_failed(cell.dst);
                let dead_hop = next.is_some_and(|w| !self.failures.circuit_up(v, w));
                if dead_dst || dead_hop {
                    stranded += 1;
                }
            }
        }
        stranded
    }

    /// Routes a cell sitting at `node` (either freshly injected or just
    /// arrived off a circuit).
    fn route_cell(&mut self, node: NodeId, mut cell: Cell, now: Nanos) -> Result<(), SimError> {
        // The phase is only known once the decision is in: terminal
        // decisions count as Deliver, everything else as Route.
        let mut span = self.profiler.span(Phase::Route);
        match self.router.decide(node, &mut cell, &mut self.rng) {
            RouteDecision::Deliver => {
                span.set_phase(Phase::Deliver);
                debug_assert_eq!(node, cell.dst, "router delivered at the wrong node");
                let latency = now.saturating_sub(cell.injected_ns);
                self.metrics
                    .on_delivered(cell.hops, latency, self.cfg.cell_bytes);
                if !self.failures.is_empty() {
                    self.metrics.delivered_during_failure += 1;
                }
                self.probe.on_delivery(&cell, latency, now);
                if let Some(&slot) = self.active_index.get(&cell.flow) {
                    let af = self.active[slot].as_mut().expect("indexed slot is live");
                    af.delivered += 1;
                    af.max_hops = af.max_hops.max(cell.hops);
                    if af.delivered >= af.total_cells {
                        let af = self.active[slot].take().expect("present");
                        self.active_index.remove(&cell.flow);
                        self.active_free.push(slot);
                        let record = FlowRecord {
                            id: af.flow.id,
                            size_bytes: af.flow.size_bytes,
                            arrival_ns: af.flow.arrival_ns,
                            completion_ns: now,
                            max_hops: af.max_hops,
                        };
                        self.probe.on_flow_finish(&record, now);
                        self.metrics.flows.push(record);
                    }
                }
                Ok(())
            }
            RouteDecision::ToNode(next) => {
                if self.queue_full(node) {
                    self.metrics.dropped_cells += 1;
                    self.probe.on_drop(&cell, node, now);
                    return Ok(());
                }
                self.queues[node.index()].push_specific(next, cell);
                self.queued_cells += 1;
                Ok(())
            }
            RouteDecision::ToClass(class) => {
                if self.queue_full(node) {
                    self.metrics.dropped_cells += 1;
                    self.probe.on_drop(&cell, node, now);
                    return Ok(());
                }
                self.queues[node.index()].push_class(class, cell);
                self.queued_cells += 1;
                Ok(())
            }
            RouteDecision::Drop => {
                self.metrics.dropped_cells += 1;
                self.probe.on_drop(&cell, node, now);
                Ok(())
            }
        }
    }

    /// True when `node`'s queues are at the configured cap.
    fn queue_full(&self, node: NodeId) -> bool {
        self.cfg.node_queue_cap > 0 && self.queues[node.index()].depth() >= self.cfg.node_queue_cap
    }

    fn handle_arrival(&mut self, a: Arrival) -> Result<(), SimError> {
        self.route_cell(a.node, a.cell, a.at_ns)
    }

    /// Installs a new circuit schedule mid-run — the §5 update operation
    /// at packet level. Cells already queued keep their routing
    /// decisions; call [`Engine::reroute_queued`] afterwards to re-route
    /// them under the new topology (the "drain" step).
    ///
    /// # Panics
    /// Panics if the new schedule covers a different node count.
    pub fn install_schedule(&mut self, schedule: &'a CircuitSchedule) {
        assert_eq!(
            schedule.n(),
            self.schedule.n(),
            "schedule update must cover the same nodes"
        );
        let _span = self.profiler.span(Phase::Reconfigure);
        self.schedule = schedule;
        self.probe
            .on_reconfiguration(self.slot, self.cfg.slot_start(self.slot));
    }

    /// Replaces the router mid-run (paired with [`Engine::install_schedule`]
    /// when an update changes the clique structure). Queued cells should
    /// be re-routed afterwards.
    ///
    /// # Panics
    /// Panics if the new router declares different classes than the one
    /// it replaces — per-class queues must stay meaningful.
    pub fn install_router(&mut self, router: &'a dyn Router) {
        assert_eq!(
            router.classes(),
            self.router.classes(),
            "router swap must keep the class set"
        );
        self.router = router;
    }

    /// Drains every queued cell and re-routes it from its current node —
    /// used after a schedule update to re-validate routing state (§5).
    ///
    /// Returns the number of cells re-routed.
    pub fn reroute_queued(&mut self) -> Result<usize, SimError> {
        let now = self.cfg.slot_start(self.slot);
        let mut total = 0;
        for v in 0..self.queues.len() {
            let cells = self.queues[v].drain_all();
            total += cells.len();
            self.queued_cells -= cells.len();
            for cell in cells {
                self.route_cell(NodeId(v as u32), cell, now)?;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::DirectRouter;
    use sorn_topology::builders::round_robin;

    fn flow(id: u64, src: u32, dst: u32, bytes: u64, at: Nanos) -> Flow {
        Flow {
            id: FlowId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: bytes,
            arrival_ns: at,
        }
    }

    #[test]
    fn single_cell_direct_delivery() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let cfg = SimConfig::default();
        let mut eng = Engine::new(cfg, &sched, &router);
        eng.add_flows([flow(1, 0, 1, 1000, 0)]).unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        let m = eng.metrics();
        assert_eq!(m.delivered_cells, 1);
        assert_eq!(m.flows.len(), 1);
        assert_eq!(m.flows[0].max_hops, 1);
        // Circuit 0->1 is up in slot 0; delivery = slot + propagation.
        assert_eq!(m.flows[0].completion_ns, 600);
    }

    #[test]
    fn waits_for_the_right_circuit() {
        let sched = round_robin(4).unwrap(); // slots: +1, +2, +3
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        // 0 -> 3 comes up in slot 2 (matching m3 at index 2).
        eng.add_flows([flow(1, 0, 3, 100, 0)]).unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        let m = eng.metrics();
        // Transmitted in slot 2: completion = 200 + 100 + 500.
        assert_eq!(m.flows[0].completion_ns, 800);
    }

    #[test]
    fn multi_cell_flow_completes_in_order_of_circuits() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        // 3 cells from 0 to 1; circuit 0->1 up once per 3-slot period.
        eng.add_flows([flow(1, 0, 1, 3 * 1250, 0)]).unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        let m = eng.metrics();
        assert_eq!(m.delivered_cells, 3);
        // Slots 0, 3, 6 carry the cells; last arrives at 600+600.
        assert_eq!(m.flows[0].completion_ns, 600 + 600);
        assert_eq!(m.transmissions, 3);
        assert!((m.delivery_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn staggered_uplinks_speed_up_transfer() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut cfg = SimConfig::default();
        cfg.uplinks = 3; // one plane per distinct matching
        let mut eng = Engine::new(cfg, &sched, &router);
        eng.add_flows([flow(1, 0, 1, 3 * 1250, 0)]).unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        let m = eng.metrics();
        // With 3 staggered planes, 0->1 is up on some plane every slot.
        assert_eq!(m.flows[0].completion_ns, 600 + 200);
    }

    #[test]
    fn failed_link_blocks_traffic() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([flow(1, 0, 1, 100, 0)]).unwrap();
        eng.failures_mut().fail_link(NodeId(0), NodeId(1));
        assert!(!eng.run_until_drained(50).unwrap());
        assert_eq!(eng.metrics().delivered_cells, 0);
        // Restore and drain.
        eng.failures_mut().restore_link(NodeId(0), NodeId(1));
        assert!(eng.run_until_drained(50).unwrap());
        assert_eq!(eng.metrics().delivered_cells, 1);
    }

    #[test]
    fn fault_plan_drives_outage_and_recovery_metrics() {
        use crate::fault::FaultPlan;
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        // 10 cells 0 -> 1; the direct circuit dies during the transfer.
        eng.add_flows([flow(1, 0, 1, 10 * 1250, 0)]).unwrap();
        let mut plan = FaultPlan::new();
        plan.link_outage(NodeId(0), NodeId(1), 500, 3_000);
        eng.set_fault_plan(plan);
        assert!(eng.run_until_drained(10_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.delivered_cells, 10);
        assert_eq!(m.failure_episodes, 1);
        assert!(m.failure_slots > 0);
        assert_eq!(
            m.recovery_times_ns.len(),
            1,
            "the drained run recovered from its one episode"
        );
        // Deliveries resumed only after restoration in this direct
        // scheme, so degraded goodput is strictly worse than healthy.
        assert!(m.degraded_goodput_ratio() < 1.0);
    }

    #[test]
    fn fault_plan_fires_probe_hook() {
        use crate::fault::{FaultAction, FaultPlan, FaultView};
        #[derive(Default)]
        struct FaultLog(Vec<(Nanos, FaultAction)>);
        impl Probe for FaultLog {
            fn on_fault(&mut self, view: &FaultView<'_>) {
                self.0.push((view.now_ns, view.event.action));
            }
        }
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng =
            Engine::with_probe(SimConfig::default(), &sched, &router, FaultLog::default());
        let mut plan = FaultPlan::new();
        plan.node_outage(NodeId(2), 0, 300);
        eng.set_fault_plan(plan);
        eng.run_slots(10).unwrap();
        let log = eng.finish();
        assert_eq!(log.0.len(), 2);
        assert_eq!(log.0[0].1, FaultAction::Fail);
        assert_eq!(log.0[1].1, FaultAction::Restore);
        assert!(log.0[0].0 <= log.0[1].0);
    }

    #[test]
    fn health_mirror_tracks_fault_plan() {
        use crate::fault::{FaultPlan, LinkHealth};
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let health = LinkHealth::new();
        eng.set_health_mirror(health.clone());
        assert!(health.is_healthy());
        let mut plan = FaultPlan::new();
        plan.link_outage(NodeId(0), NodeId(1), 0, 500);
        eng.set_fault_plan(plan);
        eng.run_slots(1).unwrap();
        assert!(!health.circuit_up(NodeId(0), NodeId(1)));
        eng.run_slots(10).unwrap();
        assert!(health.is_healthy());
    }

    #[test]
    fn stranded_cells_counted_at_finish() {
        use crate::fault::FaultPlan;
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([flow(1, 0, 1, 5 * 1250, 0)]).unwrap();
        // The link dies immediately and never comes back.
        let mut plan = FaultPlan::new();
        plan.fail_link_at(0, NodeId(0), NodeId(1));
        eng.set_fault_plan(plan);
        assert!(!eng.run_until_drained(100).unwrap());
        let stranded = eng.count_stranded();
        assert_eq!(stranded as usize, eng.total_queued());
        let injected = eng.metrics().injected_cells;
        let inflight = eng.inflight_cells() as u64;
        let m = eng.metrics().clone();
        // Accounting identity: nothing is lost, only stranded.
        assert_eq!(
            injected,
            m.delivered_cells + m.dropped_cells + stranded + inflight
        );
    }

    #[test]
    fn flows_to_out_of_range_nodes_are_rejected() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let err = eng.add_flows([flow(1, 0, 9, 100, 0)]).unwrap_err();
        assert!(matches!(err, SimError::NodeOutOfRange { .. }));
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let sched = round_robin(8).unwrap();
        let router = DirectRouter;
        let flows: Vec<Flow> = (0..20)
            .map(|i| flow(i, (i % 8) as u32, ((i + 3) % 8) as u32, 5000, i * 70))
            .collect();
        let run = |seed| {
            let mut cfg = SimConfig::default();
            cfg.seed = seed;
            let mut eng = Engine::new(cfg, &sched, &router);
            eng.add_flows(flows.clone()).unwrap();
            eng.run_until_drained(10_000).unwrap();
            (
                eng.metrics().delivered_cells,
                eng.metrics().cell_latency_sum_ns,
                eng.metrics().transmissions,
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn injection_respects_line_rate() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let cfg = SimConfig::default(); // 1 uplink
        let mut eng = Engine::new(cfg, &sched, &router);
        eng.add_flows([flow(1, 0, 1, 100 * 1250, 0)]).unwrap();
        eng.run_slots(10).unwrap();
        // At 1 uplink, at most 1 cell injected per slot.
        assert!(eng.metrics().injected_cells <= 10);
    }

    #[test]
    fn idle_circuits_are_counted() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.run_slots(3).unwrap();
        // No traffic at all: every scheduled circuit idled (4 nodes x 3 slots).
        assert_eq!(eng.metrics().idle_circuit_slots, 12);
        assert_eq!(eng.metrics().circuit_utilization(), 0.0);
    }

    #[test]
    fn live_schedule_swap_mid_run() {
        // Start on a schedule that never provides the needed circuit,
        // then install one that does — traffic drains after the update.
        let ms_bad = vec![sorn_topology::Matching::cyclic(4, 2)];
        let bad = sorn_topology::CircuitSchedule::from_matchings(ms_bad).unwrap();
        let good = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &bad, &router);
        eng.add_flows([flow(1, 0, 1, 1250, 0)]).unwrap();
        assert!(!eng.run_until_drained(100).unwrap(), "0->1 never scheduled");
        eng.install_schedule(&good);
        let rerouted = eng.reroute_queued().unwrap();
        assert_eq!(rerouted, 1);
        assert!(eng.run_until_drained(100).unwrap());
        assert_eq!(eng.metrics().flows.len(), 1);
    }

    #[test]
    fn schedule_swap_with_cells_inflight() {
        // Swap the schedule while a cell is still propagating: the
        // arrival calendar must carry it across the swap and deliver
        // under the new schedule.
        let a = round_robin(4).unwrap();
        let ms = vec![sorn_topology::Matching::cyclic(4, 2)];
        let b = sorn_topology::CircuitSchedule::from_matchings(ms).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &a, &router);
        eng.add_flows([flow(1, 0, 1, 1250, 0)]).unwrap();
        eng.run_slots(1).unwrap(); // transmitted in slot 0, now in flight
        assert_eq!(eng.inflight_cells(), 1);
        eng.install_schedule(&b);
        eng.reroute_queued().unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        assert_eq!(eng.metrics().delivered_cells, 1);
        // Same landing time as without the swap: propagation is fixed.
        assert_eq!(eng.metrics().flows[0].completion_ns, 600);
    }

    #[test]
    fn flow_slots_recycle_across_sequential_flows() {
        // Each flow finishes before the next arrives, so the slab hands
        // the same slot out repeatedly; records must stay per-flow.
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([
            flow(10, 0, 1, 1250, 0),
            flow(20, 0, 1, 1250, 5_000),
            flow(30, 2, 3, 1250, 10_000),
        ])
        .unwrap();
        assert!(eng.run_until_drained(1_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.delivered_cells, 3);
        let ids: Vec<u64> = m.flows.iter().map(|f| f.id.0).collect();
        assert_eq!(ids, vec![10, 20, 30]);
        assert!(m.flows.iter().all(|f| f.max_hops == 1));
    }

    #[test]
    #[should_panic(expected = "same nodes")]
    fn schedule_swap_rejects_size_change() {
        let a = round_robin(4).unwrap();
        let b = round_robin(5).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &a, &router);
        eng.install_schedule(&b);
    }

    #[test]
    fn link_transmissions_sum_to_total() {
        let sched = round_robin(6).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows: Vec<Flow> = (0..6u32)
            .map(|s| flow(s as u64, s, (s + 2) % 6, 3 * 1250, 0))
            .collect();
        eng.add_flows(flows).unwrap();
        assert!(eng.run_until_drained(10_000).unwrap());
        let m = eng.metrics();
        let sum: u64 = m.link_transmissions.values().sum();
        assert_eq!(sum, m.transmissions);
        // Direct routing: only (s, s+2) links carry traffic.
        for (a, b) in m.link_transmissions.keys() {
            assert_eq!((a + 2) % 6, b);
        }
        // Symmetric load: CV 0.
        assert!(m.link_load_cv() < 1e-12);
    }

    #[test]
    fn queue_cap_drops_excess_cells() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut cfg = SimConfig::default();
        cfg.node_queue_cap = 2;
        let mut eng = Engine::new(cfg, &sched, &router);
        // 10 cells toward one destination: the direct circuit drains one
        // cell per 3-slot period while injection runs at 1 cell/slot, so
        // the 2-cell queue overflows and drops.
        eng.add_flows([flow(1, 0, 1, 10 * 1250, 0)]).unwrap();
        assert!(eng.run_until_drained(1_000).unwrap());
        let m = eng.metrics();
        assert!(m.dropped_cells > 0, "cap must bite");
        assert_eq!(m.delivered_cells + m.dropped_cells, m.injected_cells);
        assert!(m.loss_rate() > 0.0 && m.loss_rate() < 1.0);
        // A flow with losses never completes.
        assert!(m.flows.is_empty());
    }

    #[test]
    fn no_drops_without_cap() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([flow(1, 0, 1, 10 * 1250, 0)]).unwrap();
        assert!(eng.run_until_drained(10_000).unwrap());
        assert_eq!(eng.metrics().dropped_cells, 0);
        assert_eq!(eng.metrics().loss_rate(), 0.0);
    }

    #[test]
    fn reroute_queued_preserves_cells() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([flow(1, 0, 3, 5 * 1250, 0)]).unwrap();
        eng.run_slots(1).unwrap();
        let queued = eng.total_queued();
        assert!(queued > 0);
        let rerouted = eng.reroute_queued().unwrap();
        assert_eq!(rerouted, queued);
        assert_eq!(eng.total_queued(), queued);
        assert!(eng.run_until_drained(100).unwrap());
    }
}
