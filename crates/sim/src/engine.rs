//! The slot-synchronous simulation engine.
//!
//! Each slot, every node's uplinks are connected according to the (phase-
//! staggered) circuit schedule; a node transmits at most one cell per
//! uplink into the circuit that is up. Cells propagate with a fixed delay
//! and are re-routed (or delivered) on arrival. Flow arrivals inject cells
//! at source NICs at line rate.
//!
//! The engine is fully deterministic — and deterministically *parallel*.
//! Routing randomness comes from per-node counter-based streams
//! ([`crate::rng::NodeRng`]), so a decision depends only on the seed, the
//! deciding node, and that node's decision count, never on cross-node
//! interleaving. The two heavy passes of a slot are sharded by node:
//!
//! * **arrival routing** — due arrivals are grouped by arrival node and
//!   routed node-ascending; queue pushes are node-local, while
//!   deliveries and drops are buffered per shard and applied in node
//!   order afterwards;
//! * **the transmit walk** — each shard walks its node range across all
//!   uplinks, popping node-local queues and buffering transmitted cells;
//!   the buffers merge into the arrival calendar in node order, so the
//!   canonical calendar order is `(node, uplink)`.
//!
//! Because every per-node mutation happens on the thread owning that
//! node's shard and every cross-node effect is applied in a canonical
//! node-ascending merge, a run with `SimConfig::engine_threads = k`
//! is bit-identical to the serial run for any `k`.
//!
//! The hot path is built on index-addressed state sized for warehouse
//! scale: a per-node *occupancy bitset* (one bit per node, set while
//! anything is queued there) lets the transmit walk skip 64 idle nodes
//! per word test, sparse per-node next-hop queues and a sparse per-link
//! transmission matrix keep memory linear in nodes rather than
//! quadratic, active flows live in struct-of-arrays columns behind a
//! direct-mapped id index ([`crate::flow_table::FlowTable`]), and a
//! slot-bucketed arrival calendar orders in-flight cells — no hashing
//! or heap rebalancing per transmitted cell. Slots with provably no
//! work (nothing queued, injecting, in flight, arriving, or faulting)
//! fast-forward through [`Engine::step_quiet`], touching only the
//! idle-port counters.

use crate::calendar::SlotCalendar;
use crate::cell::{Cell, Flow, FlowId};
use crate::checkpoint::{QueuesSnap, RestoreError, Snapshot};
use crate::config::{Nanos, SimConfig};
use crate::failure::FailureSet;
use crate::fault::{FaultPlan, FaultView, LinkHealth};
use crate::flow_table::FlowTable;
use crate::hash::FastHashBuilder;
use crate::metrics::{FlowRecord, LinkMatrix, LinkRow, Metrics};
use crate::par::WorkerPool;
use crate::probe::{NoopProbe, Probe, SkipView, SlotView};
use crate::profiler::{NoopProfiler, Phase, Profiler};
use crate::queues::NodeQueues;
use crate::rng::NodeRng;
use crate::router::{ClassId, RouteDecision, Router};
use crate::trace::{circuit_wait_slots, FlowSampler, HopEvent, HopKind};
use sorn_topology::{CircuitSchedule, Matching, NodeId};
use std::cell::Cell as MemoCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

/// Below this many due arrivals the pass runs inline even when a pool
/// is attached — fan-out overhead would exceed the routing work. The
/// inline path processes the identical canonical (node-ascending)
/// order, so the cutover is invisible in the results.
const PAR_MIN_ARRIVALS: usize = 64;

/// Errors surfaced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A cell exceeded the router's hop bound — a routing bug.
    HopBoundExceeded {
        /// The offending flow.
        flow: FlowId,
        /// Hops taken.
        hops: u8,
        /// The router's declared bound.
        bound: u8,
    },
    /// A flow references a node outside the schedule.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Network size.
        n: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::HopBoundExceeded { flow, hops, bound } => write!(
                f,
                "flow {flow:?}: cell took {hops} hops, exceeding the router bound {bound}"
            ),
            SimError::NodeOutOfRange { node, n } => {
                write!(f, "flow endpoint {node} outside network of {n} nodes")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Tracks a flow that is still injecting or still has cells in flight.
/// `pub(crate)` so checkpoints can carry the slab verbatim.
#[derive(Debug, Clone)]
pub(crate) struct ActiveFlow {
    pub(crate) flow: Flow,
    pub(crate) total_cells: u64,
    pub(crate) injected: u64,
    pub(crate) delivered: u64,
    pub(crate) max_hops: u8,
}

/// An in-flight cell arriving at a node.
///
/// Ordering lives in the calendar ring: cells transmitted in slot `s`
/// all mature a fixed number of slots later and drain FIFO in the
/// canonical `(node, uplink)` transmit-merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Arrival {
    pub(crate) at_ns: Nanos,
    pub(crate) node: NodeId,
    pub(crate) cell: Cell,
}

/// Per-shard output of the sharded passes. Shards write only here (and
/// into their own slice of node state); the engine folds the scratch
/// back into global state in shard (= node) order.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Arrival pass: cells delivered at their destination, with the
    /// arrival timestamp, in canonical node order.
    deliveries: Vec<(Cell, Nanos)>,
    /// Arrival pass: cells shed by the router or a full queue.
    drops: Vec<(NodeId, Cell, Nanos)>,
    /// Transmit pass: cells put on circuits, `(sender, arrival node,
    /// cell)`, in `(node, uplink)` order.
    sent: Vec<(NodeId, NodeId, Cell)>,
    /// Hop events of traced flows, in canonical order within the shard.
    /// Always empty when tracing is off.
    hops: Vec<HopEvent>,
    /// Net change to the global queued-cell count.
    queued_delta: isize,
    /// Net change to the incremental stranded-cell count (only
    /// meaningful while tracking is active).
    stranded_delta: i64,
    transmissions: u64,
    idle: u64,
    /// Links whose count left zero in this shard's matrix band.
    links_nonzero_delta: usize,
    /// First hop-bound violation seen by this shard, in canonical order.
    err: Option<SimError>,
}

impl ShardScratch {
    /// Prepares the scratch for a pass; the event buffers were drained
    /// by the previous merge and keep their capacity.
    fn reset(&mut self) {
        debug_assert!(self.deliveries.is_empty() && self.drops.is_empty() && self.sent.is_empty());
        debug_assert!(self.hops.is_empty());
        self.queued_delta = 0;
        self.stranded_delta = 0;
        self.transmissions = 0;
        self.idle = 0;
        self.links_nonzero_delta = 0;
        self.err = None;
    }
}

/// Memo for [`Engine::count_stranded`]: valid while the failure epoch
/// matches and queue mutations have been tracked incrementally.
#[derive(Debug, Clone, Copy, Default)]
struct StrandedMemo {
    valid: bool,
    epoch: u64,
    count: u64,
}

/// One shard of the arrival-routing pass: a contiguous node range with
/// exclusive access to those nodes' queues, RNG streams, arrival index
/// lists, and occupancy words (shard bases are 64-aligned, so the
/// occupancy bitset splits on word boundaries).
struct ArrivalShard<'w> {
    base: usize,
    queues: &'w mut [NodeQueues],
    rngs: &'w mut [NodeRng],
    lists: &'w mut [Vec<u32>],
    occ: &'w mut [u64],
    out: &'w mut ShardScratch,
}

/// One shard of the transmit walk: a contiguous node range plus the
/// matching band of link-matrix rows and occupancy words.
struct TransmitShard<'w> {
    base: usize,
    queues: &'w mut [NodeQueues],
    links: &'w mut [LinkRow],
    occ: &'w mut [u64],
    out: &'w mut ShardScratch,
}

/// Precomputed per-matching port tables for the bitset transmit walk.
///
/// `words[m][w]` counts the scheduled (non-self) ports of pool matching
/// `m` among nodes `64w .. 64w+63`: when an occupancy word is zero, the
/// walk charges that many idle ports and skips 64 nodes without touching
/// a queue. `phase_totals`/`period_total` pre-sum those circuit totals
/// per schedule phase, which is all a provably-quiet slot — or a whole
/// fast-forwarded gap — needs ([`Engine::step_quiet`],
/// [`Engine::fast_forward_to`]).
struct IdleTables {
    words: Vec<Vec<u32>>,
    /// `phase_totals[p]` sums the matchings' circuit totals over the
    /// uplink-staggered matchings active when `slot % period == p` — the
    /// idle-port charge of one fully-quiet slot at that phase. Summed in
    /// uplink order, exactly like the per-slot accounting it replaces.
    phase_totals: Vec<u64>,
    /// Sum of `phase_totals`: the idle-port charge of one whole quiet
    /// schedule period, for closed-form gap accounting.
    period_total: u64,
}

impl IdleTables {
    fn build(schedule: &CircuitSchedule, cfg: &SimConfig) -> Self {
        let n = schedule.n();
        let pool = schedule.matchings();
        let mut words = Vec::with_capacity(pool.len());
        let mut totals = Vec::with_capacity(pool.len());
        for m in pool {
            let mut per = vec![0u32; n.div_ceil(64)];
            let mut total = 0u64;
            for v in 0..n {
                if m.dst_of(NodeId(v as u32)).is_some() {
                    per[v / 64] += 1;
                    total += 1;
                }
            }
            words.push(per);
            totals.push(total);
        }
        let period = schedule.period() as u64;
        let phase_totals: Vec<u64> = (0..period)
            .map(|phase| {
                staggered_matchings(schedule, cfg, phase)
                    .iter()
                    .map(|&(pi, _)| totals[pi])
                    .sum()
            })
            .collect();
        let period_total = phase_totals.iter().sum();
        IdleTables {
            words,
            phase_totals,
            period_total,
        }
    }
}

/// The uplink-staggered matchings active in `slot`, each with its index
/// into the schedule's matching pool (the key into [`IdleTables`]).
fn staggered_matchings<'a>(
    schedule: &'a CircuitSchedule,
    cfg: &SimConfig,
    slot: u64,
) -> Vec<(usize, &'a Matching)> {
    let period = schedule.period() as u64;
    let indices = schedule.slot_indices();
    let pool = schedule.matchings();
    (0..cfg.uplinks)
        .map(|uplink| {
            let offset = (uplink as u64 * period) / cfg.uplinks as u64;
            let pi = indices[((slot + offset) % period) as usize];
            (pi, &pool[pi])
        })
        .collect()
}

/// The simulation engine.
///
/// Generic over a [`Probe`] for instrumentation and a [`Profiler`]
/// for self-profiling; the defaults ([`NoopProbe`], [`NoopProfiler`])
/// compile both away, so `Engine::new` builds an uninstrumented
/// engine with zero overhead. Use [`Engine::with_probe`] to attach a
/// real probe and [`Engine::with_probe_and_profiler`] to also time
/// the engine's own phases.
pub struct Engine<'a, P: Probe = NoopProbe, F: Profiler = NoopProfiler> {
    cfg: SimConfig,
    schedule: &'a CircuitSchedule,
    router: &'a dyn Router,
    queues: Vec<NodeQueues>,
    /// One decision stream per node; parallel shards borrow disjoint
    /// ranges, so streams never contend and never reorder.
    rngs: Vec<NodeRng>,
    /// Flows not yet arrived, sorted by arrival time; keys index
    /// `future_store`.
    future_flows: BinaryHeap<Reverse<(Nanos, u64)>>,
    /// Pending flows in add order; activation `take`s them out.
    future_store: Vec<Option<Flow>>,
    future_pending: usize,
    /// Flows currently injecting, per source node (FIFO per node);
    /// entries are slots into `table`.
    injecting: Vec<VecDeque<usize>>,
    injecting_flows: usize,
    /// Active flows in struct-of-arrays columns with a direct-mapped id
    /// index — no hash probe per delivered cell.
    table: FlowTable,
    /// One bit per node, set exactly while that node has queued cells;
    /// the transmit walk tests 64 nodes per word.
    occupancy: Vec<u64>,
    /// Per-matching scheduled-port counts; rebuilt on schedule installs.
    idle_tables: IdleTables,
    inflight: SlotCalendar<Arrival>,
    /// Cells sitting in node queues, maintained incrementally so
    /// `total_queued`/`is_drained` are O(1) (debug builds re-count).
    queued_cells: usize,
    failures: FailureSet,
    /// Bumped whenever the failure set may have changed (scripted
    /// events, `failures_mut` borrows); stale epochs invalidate the
    /// stranded memo.
    failure_epoch: u64,
    /// Incremental stranded-cell count; see [`Engine::count_stranded`].
    stranded: MemoCell<StrandedMemo>,
    fault_plan: FaultPlan,
    fault_cursor: usize,
    health_mirror: Option<LinkHealth>,
    episode: EpisodeState,
    metrics: Metrics,
    slot: u64,
    /// Present when `cfg.engine_threads > 1`; `None` keeps every pass
    /// on the caller's thread.
    pool: Option<WorkerPool>,
    /// Reusable per-shard scratch (one entry per shard in use).
    shards: Vec<ShardScratch>,
    /// Due arrivals drained from the calendar each slot (reused).
    arrival_buf: Vec<Arrival>,
    /// Per-node indices into `arrival_buf`, giving the canonical
    /// node-grouped processing order (reused; cleared by the shards).
    node_arrivals: Vec<Vec<u32>>,
    /// Flow records completed during a merge, applied after the deliver
    /// span closes (reused).
    finished_flows: Vec<FlowRecord>,
    /// Present when `cfg.trace_one_in > 0`: decides which flows get
    /// hop-by-hop spans. Pure hash of `(seed, flow id)` — it never
    /// draws from the routing streams, so tracing cannot perturb a run.
    tracer: Option<FlowSampler>,
    /// Opt-in batched quiet-gap skipping (see
    /// [`Engine::set_fast_forward`]). A runtime knob, not simulation
    /// state: it is deliberately *not* checkpointed, so a resumed run
    /// chooses it afresh.
    ff_enabled: bool,
    probe: P,
    profiler: F,
}

/// Tracks the failure episode the engine is in, for time-to-recover.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EpisodeState {
    /// Total queue depth when the current episode began.
    pub(crate) onset_queued: usize,
    /// Set while at least one element is failed.
    pub(crate) degraded: bool,
    /// After full restoration: the restore time, awaiting queue recovery.
    pub(crate) awaiting_recovery_since: Option<Nanos>,
}

impl<'a> Engine<'a, NoopProbe, NoopProfiler> {
    /// Creates an uninstrumented engine over a schedule and routing
    /// scheme.
    pub fn new(cfg: SimConfig, schedule: &'a CircuitSchedule, router: &'a dyn Router) -> Self {
        Engine::with_probe(cfg, schedule, router, NoopProbe)
    }

    /// Rebuilds an uninstrumented engine from a snapshot; see
    /// [`Engine::restore_with_probe_and_profiler`] for the validation
    /// contract.
    pub fn restore(
        snapshot: &Snapshot,
        schedule: &'a CircuitSchedule,
        router: &'a dyn Router,
    ) -> Result<Self, RestoreError> {
        Engine::restore_with_probe(snapshot, schedule, router, NoopProbe)
    }
}

impl<'a, P: Probe> Engine<'a, P, NoopProfiler> {
    /// Creates an engine whose run is observed by `probe`.
    pub fn with_probe(
        cfg: SimConfig,
        schedule: &'a CircuitSchedule,
        router: &'a dyn Router,
        probe: P,
    ) -> Self {
        Engine::with_probe_and_profiler(cfg, schedule, router, probe, NoopProfiler)
    }

    /// Rebuilds an engine observed by `probe` from a snapshot; see
    /// [`Engine::restore_with_probe_and_profiler`] for the validation
    /// contract.
    pub fn restore_with_probe(
        snapshot: &Snapshot,
        schedule: &'a CircuitSchedule,
        router: &'a dyn Router,
        probe: P,
    ) -> Result<Self, RestoreError> {
        Engine::restore_with_probe_and_profiler(snapshot, schedule, router, probe, NoopProfiler)
    }
}

impl<'a, P: Probe, F: Profiler> Engine<'a, P, F> {
    /// Creates an engine observed by `probe` whose own phase timings
    /// go to `profiler`.
    pub fn with_probe_and_profiler(
        cfg: SimConfig,
        schedule: &'a CircuitSchedule,
        router: &'a dyn Router,
        probe: P,
        profiler: F,
    ) -> Self {
        let n = schedule.n();
        assert!(cfg.slot_ns > 0, "slot_ns must be positive");
        // Fixed propagation: every cell transmitted in slot `s` is
        // processed at the start of slot `s + delay_slots`.
        let delay_slots = (cfg.slot_ns + cfg.propagation_ns).div_ceil(cfg.slot_ns);
        Engine {
            rngs: (0..n)
                .map(|v| NodeRng::for_node(cfg.seed, v as u32))
                .collect(),
            schedule,
            router,
            queues: (0..n).map(|_| NodeQueues::new(router.classes())).collect(),
            future_flows: BinaryHeap::new(),
            future_store: Vec::new(),
            future_pending: 0,
            injecting: vec![VecDeque::new(); n],
            injecting_flows: 0,
            table: FlowTable::new(),
            occupancy: vec![0; n.div_ceil(64)],
            idle_tables: IdleTables::build(schedule, &cfg),
            inflight: SlotCalendar::new(delay_slots),
            queued_cells: 0,
            failures: FailureSet::none(),
            failure_epoch: 0,
            stranded: MemoCell::new(StrandedMemo::default()),
            fault_plan: FaultPlan::new(),
            fault_cursor: 0,
            health_mirror: None,
            episode: EpisodeState::default(),
            metrics: Metrics {
                link_transmissions: LinkMatrix::with_nodes(n),
                ..Metrics::default()
            },
            slot: 0,
            pool: (cfg.engine_threads > 1).then(|| WorkerPool::new(cfg.engine_threads)),
            shards: Vec::new(),
            arrival_buf: Vec::new(),
            node_arrivals: vec![Vec::new(); n],
            finished_flows: Vec::new(),
            tracer: (cfg.trace_one_in > 0).then(|| FlowSampler::new(cfg.seed, cfg.trace_one_in)),
            ff_enabled: false,
            probe,
            profiler,
            cfg,
        }
    }

    /// Shared access to the attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Shared access to the attached profiler. Handle-style profilers
    /// (the telemetry wall-clock one) can also be read through a clone
    /// kept by the caller.
    pub fn profiler(&self) -> &F {
        &self.profiler
    }

    /// Mutable access to the attached probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Declares the run over: fires [`Probe::on_run_end`] with a final
    /// state view and returns the probe. Call after the last
    /// `run_until_drained`/`run_slots` so buffering probes (samplers,
    /// trace sinks) can emit their closing snapshot.
    pub fn finish(mut self) -> P {
        self.metrics.stranded_cells = self.count_stranded();
        self.probe.on_run_end(&SlotView {
            slot: self.slot,
            now_ns: self.cfg.slot_start(self.slot),
            metrics: &self.metrics,
            total_queued: self.total_queued(),
            inflight_cells: self.inflight.len(),
            active_flows: self.table.live_count(),
            queues: &self.queues,
        });
        self.probe
    }

    /// Queues flows for future arrival.
    pub fn add_flows(&mut self, flows: impl IntoIterator<Item = Flow>) -> Result<(), SimError> {
        let n = self.schedule.n();
        for f in flows {
            for node in [f.src, f.dst] {
                if node.index() >= n {
                    return Err(SimError::NodeOutOfRange { node, n });
                }
            }
            let key = self.future_store.len() as u64;
            self.future_flows.push(Reverse((f.arrival_ns, key)));
            self.future_store.push(Some(f));
            self.future_pending += 1;
        }
        Ok(())
    }

    /// Mutable access to the failure set (§6 blast-radius experiments).
    ///
    /// Manual pokes bypass the fault plan: no `on_fault` hook fires, no
    /// episode is tracked, and an attached health mirror is not
    /// republished until the next scripted event. Prefer
    /// [`Engine::set_fault_plan`] for timed failures.
    pub fn failures_mut(&mut self) -> &mut FailureSet {
        // Conservatively assume the borrow mutates: a stale stranded
        // memo is recomputed on the next query.
        self.failure_epoch += 1;
        &mut self.failures
    }

    /// Shared access to the failure set.
    pub fn failures(&self) -> &FailureSet {
        &self.failures
    }

    /// Installs a timed fail/restore script. Events whose `at_ns` has
    /// been reached are applied at the start of each slot, in order,
    /// firing [`Probe::on_fault`] per event. Replaces any prior plan
    /// (its unapplied events are discarded).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
        self.fault_cursor = 0;
    }

    /// Attaches a health view that mirrors the engine's failure set.
    /// Published immediately and after every applied fault event, so
    /// failure-aware routers and the control plane share one picture of
    /// what is down.
    pub fn set_health_mirror(&mut self, health: LinkHealth) {
        health.publish(&self.failures);
        self.health_mirror = Some(health);
    }

    /// Collected metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current slot number.
    pub fn now_slot(&self) -> u64 {
        self.slot
    }

    /// Total cells sitting in node queues. O(1): the engine maintains
    /// the count as cells are pushed and popped; debug builds assert it
    /// against the O(n) per-node recount.
    pub fn total_queued(&self) -> usize {
        debug_assert_eq!(
            self.queued_cells,
            self.queues.iter().map(|q| q.depth()).sum::<usize>(),
            "queued-cell counter must match the per-node recount"
        );
        self.queued_cells
    }

    /// True when no traffic remains anywhere in the system. O(1).
    pub fn is_drained(&self) -> bool {
        self.future_pending == 0
            && self.inflight.is_empty()
            && self.total_queued() == 0
            && self.injecting_flows == 0
    }

    /// Runs `slots` more slots. With fast-forward enabled
    /// ([`Engine::set_fast_forward`]), quiet gaps inside the range are
    /// jumped in O(1) per gap instead of O(slots).
    pub fn run_slots(&mut self, slots: u64) -> Result<(), SimError> {
        let deadline = self.slot + slots;
        while self.slot < deadline {
            if self.fast_forward_to(deadline) == 0 {
                self.step()?;
            }
        }
        Ok(())
    }

    /// Runs until all traffic drains or `max_slots` elapse; returns `true`
    /// when fully drained.
    pub fn run_until_drained(&mut self, max_slots: u64) -> Result<bool, SimError> {
        let deadline = self.slot + max_slots;
        while self.slot < deadline {
            if self.is_drained() {
                return Ok(true);
            }
            if self.fast_forward_to(deadline) == 0 {
                self.step()?;
            }
        }
        // One more check: the last step may have drained the system.
        Ok(self.is_drained())
    }

    /// Enables batched quiet-gap skipping: [`Engine::fast_forward_to`]
    /// (and through it [`Engine::run_slots`] /
    /// [`Engine::run_until_drained`]) may jump whole quiescent spans in
    /// one arithmetic step instead of per-slot [`Engine::step_quiet`]
    /// calls. Off by default. Results are bit-identical either way —
    /// the only observable difference is that probes receive one
    /// [`Probe::on_slots_skipped`] call per span instead of per-slot
    /// [`Probe::on_slot_end`] calls, and every probe in this workspace
    /// batches those spans exactly. Not checkpointed: re-enable after a
    /// restore if wanted.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.ff_enabled = enabled;
    }

    /// True when batched quiet-gap skipping is enabled.
    pub fn fast_forward_enabled(&self) -> bool {
        self.ff_enabled
    }

    /// True when this slot provably has no work: nothing queued or
    /// injecting, no arrival or flow activation due, no scripted fault
    /// firing, and a healthy fabric. Such a slot's only observable
    /// effects are idle-port counts and the per-slot hooks, so
    /// [`Engine::step_quiet`] reproduces it in O(uplinks).
    fn slot_is_quiet(&self, now: Nanos) -> bool {
        self.queued_cells == 0
            && self.injecting_flows == 0
            && self.failures.is_empty()
            && self
                .inflight
                .next_due_slot()
                .is_none_or(|due| due > self.slot)
            && self
                .future_flows
                .peek()
                .is_none_or(|&Reverse((t, _))| t > now)
            && self
                .fault_plan
                .events()
                .get(self.fault_cursor)
                .is_none_or(|e| e.at_ns > now)
    }

    /// Fast-forwards one provably-quiet slot (see
    /// [`Engine::slot_is_quiet`]) without walking any node: every
    /// scheduled port idles, so the idle counter advances by each active
    /// matching's precomputed circuit total, the calendar head keeps
    /// pace, and the per-slot probe hook fires exactly as on the full
    /// path — a fast-forwarded run stays bit-identical, checkpoints
    /// included.
    fn step_quiet(&mut self, now: Nanos) {
        // Keep the calendar's head-slot evolution (a checkpointed field)
        // identical to the full path's drain loop.
        let stray = self.inflight.pop_due(self.slot);
        debug_assert!(stray.is_none(), "quiet slot released an arrival");
        let period = self.schedule.period() as u64;
        self.metrics.idle_circuit_slots +=
            self.idle_tables.phase_totals[(self.slot % period) as usize];
        if self.metrics.stranded_cells != 0 {
            self.metrics.stranded_cells = 0;
        }
        if let Some(restored_at) = self.episode.awaiting_recovery_since {
            // An empty queue is trivially back at its onset depth.
            self.metrics
                .recovery_times_ns
                .push(now.saturating_sub(restored_at));
            self.episode.awaiting_recovery_since = None;
        }
        self.slot += 1;
        self.metrics.slots = self.slot;
        self.metrics.slots_skipped += 1;
        self.probe.on_slot_end(&SlotView {
            slot: self.slot,
            now_ns: now,
            metrics: &self.metrics,
            total_queued: 0,
            inflight_cells: self.inflight.len(),
            active_flows: self.table.live_count(),
            queues: &self.queues,
        });
    }

    /// Jumps an entire quiescent gap — from the current slot up to (but
    /// bounded by) `target` — in one arithmetic step, and returns how
    /// many slots it covered (`0` means "no jump: call
    /// [`Engine::step`]"). The jump stops at the earliest of `target`,
    /// the calendar's [`SlotCalendar::next_due_slot`], the first slot a
    /// pending flow activation lands in, and the first slot the next
    /// scripted [`FaultPlan`] event affects — exactly the conditions
    /// under which per-slot stepping would stop finding the slot quiet —
    /// and the attached probe's [`Probe::next_boundary_ns`] (an interval
    /// sampler's next mark). Reconfiguration and checkpoint boundaries
    /// are the *caller's* boundaries: pass the slot you would otherwise
    /// have stepped to (drivers that `install_schedule` or checkpoint at
    /// slot `s` pass `target = s`); epoch-series boundaries need no
    /// bound because probes batch whole spans exactly via
    /// [`Probe::on_slots_skipped`].
    ///
    /// No RNG is drawn in a quiet slot, so the skipped span is pure
    /// arithmetic: metrics, calendar head, checkpoint bytes, and every
    /// workspace probe's state end up bit-identical to stepping
    /// slot-by-slot, at any `engine_threads`.
    ///
    /// Returns `0` (and does nothing) when fast-forward is disabled
    /// (see [`Engine::set_fast_forward`]), the current slot is not
    /// provably quiet, or the bounded gap is shorter than two slots.
    pub fn fast_forward_to(&mut self, target: u64) -> u64 {
        if !self.ff_enabled {
            return 0;
        }
        let now = self.cfg.slot_start(self.slot);
        if !self.slot_is_quiet(now) {
            return 0;
        }
        let slot_ns = self.cfg.slot_ns;
        let mut bound = target;
        if let Some(due) = self.inflight.next_due_slot() {
            bound = bound.min(due);
        }
        if let Some(&Reverse((t, _))) = self.future_flows.peek() {
            // The activation drain admits flows with `t <= now`, so the
            // first slot that sees this flow is the first with
            // `slot_start(slot) >= t`.
            bound = bound.min(t.div_ceil(slot_ns));
        }
        if let Some(e) = self.fault_plan.events().get(self.fault_cursor) {
            bound = bound.min(e.at_ns.div_ceil(slot_ns));
        }
        if let Some(t) = self.probe.next_boundary_ns() {
            // The first slot whose end view carries `now_ns >= t` must
            // close the span: views are `(slot, now_ns = (slot-1) *
            // slot_ns)`, so that slot is `ceil(t / slot_ns) + 1`.
            bound = bound.min(t.div_ceil(slot_ns) + 1);
        }
        if bound <= self.slot + 1 {
            return 0;
        }
        let skipped = bound - self.slot;
        // Collapse the calendar's head-slot evolution: N quiet
        // `pop_due(s)` calls leave `head_slot = max(head, bound)`, the
        // same as one `pop_due(bound - 1)`.
        let stray = self.inflight.pop_due(bound - 1);
        debug_assert!(stray.is_none(), "quiet gap released an arrival");
        // Closed-form idle-port accounting: whole schedule periods in
        // one multiply, the remainder phase-by-phase. Identical u64 sums
        // to the per-slot loop.
        let period = self.schedule.period() as u64;
        let whole = skipped / period;
        self.metrics.idle_circuit_slots += whole * self.idle_tables.period_total;
        for s in (self.slot + whole * period)..bound {
            self.metrics.idle_circuit_slots += self.idle_tables.phase_totals[(s % period) as usize];
        }
        if self.metrics.stranded_cells != 0 {
            self.metrics.stranded_cells = 0;
        }
        if let Some(restored_at) = self.episode.awaiting_recovery_since {
            // The first slot of the gap would have closed the episode.
            self.metrics
                .recovery_times_ns
                .push(now.saturating_sub(restored_at));
            self.episode.awaiting_recovery_since = None;
        }
        self.slot = bound;
        self.metrics.slots = bound;
        self.metrics.slots_skipped += skipped;
        self.probe.on_slots_skipped(&SkipView {
            end: SlotView {
                slot: bound,
                now_ns: self.cfg.slot_start(bound - 1),
                metrics: &self.metrics,
                total_queued: 0,
                inflight_cells: self.inflight.len(),
                active_flows: self.table.live_count(),
                queues: &self.queues,
            },
            skipped,
            slot_ns,
        });
        skipped
    }

    /// Advances one slot: deliveries, arrivals, injection, transmission.
    pub fn step(&mut self) -> Result<(), SimError> {
        let now = self.cfg.slot_start(self.slot);

        if self.slot_is_quiet(now) {
            self.step_quiet(now);
            return Ok(());
        }

        // 0. Scripted fault events due by this slot boundary take effect
        // before any routing, so this slot already sees the new health.
        {
            let _span = self.profiler.span(Phase::FaultApply);
            self.apply_due_faults(now);
        }

        // 1. Cells that have landed by the start of this slot, routed in
        // canonical node order (sharded across the pool when present).
        self.arrival_pass(now);

        // 2. Newly arrived flows begin injecting.
        let enqueue_span = self.profiler.span(Phase::Enqueue);
        while let Some(Reverse((t, _key))) = self.future_flows.peek() {
            if *t > now {
                break;
            }
            let (_, key) = self.future_flows.pop().expect("peeked").0;
            let flow = self.future_store[key as usize].take().expect("stored flow");
            self.future_pending -= 1;
            let total_cells = flow.cell_count(self.cfg.cell_bytes);
            self.probe.on_flow_start(&flow, now);
            let src = flow.src.index();
            let slot = self.table.insert(&flow, total_cells);
            self.injecting[src].push_back(slot);
            self.injecting_flows += 1;
        }
        drop(enqueue_span);

        // 3. Source NICs inject at line rate (uplinks cells per slot).
        // Stays serial: injection is node-local and cheap next to the
        // sharded passes, and each injected cell is timed inside
        // `route_cell`. The flow counter skips the per-node scan
        // entirely during injection-free stretches.
        for src in 0..self.queues.len() {
            if self.injecting_flows == 0 {
                break;
            }
            let mut budget = self.cfg.uplinks;
            while budget > 0 {
                let Some(&slot) = self.injecting[src].front() else {
                    break;
                };
                let (cell, done_injecting) = self.table.next_cell(slot, now);
                self.metrics.injected_cells += 1;
                self.route_cell(cell.src, cell, now);
                if done_injecting {
                    self.injecting[src].pop_front();
                    self.injecting_flows -= 1;
                }
                budget -= 1;
            }
        }

        // 4. Transmit one cell per uplink per node along the schedule,
        // sharded by node; shard outputs merge in node order, giving
        // the calendar its canonical `(node, uplink)` arrival order.
        let transmit_err = self.transmit_pass(now);

        let queued = self.total_queued();
        self.metrics.peak_queue_depth = self.metrics.peak_queue_depth.max(queued);
        if !self.failures.is_empty() {
            self.metrics.failure_slots += 1;
            // Keep the stranded gauge live while degraded: the first
            // query after a failure-set change walks the queues, then
            // the incremental count makes this O(1) per slot.
            self.metrics.stranded_cells = self.count_stranded();
        } else if self.metrics.stranded_cells != 0 {
            self.metrics.stranded_cells = 0;
        }
        if let Some(restored_at) = self.episode.awaiting_recovery_since {
            if queued <= self.episode.onset_queued {
                self.metrics
                    .recovery_times_ns
                    .push(now.saturating_sub(restored_at));
                self.episode.awaiting_recovery_since = None;
            }
        }
        self.slot += 1;
        self.metrics.slots = self.slot;
        self.probe.on_slot_end(&SlotView {
            slot: self.slot,
            now_ns: now,
            metrics: &self.metrics,
            total_queued: queued,
            inflight_cells: self.inflight.len(),
            active_flows: self.table.live_count(),
            queues: &self.queues,
        });
        transmit_err
    }

    /// Drains due arrivals, groups them by arrival node, routes them
    /// (inline or across the pool), and applies deliveries and drops in
    /// canonical node order.
    fn arrival_pass(&mut self, now: Nanos) {
        let mut buf = std::mem::take(&mut self.arrival_buf);
        debug_assert!(buf.is_empty());
        while let Some(arrival) = self.inflight.pop_due(self.slot) {
            debug_assert!(arrival.at_ns <= now, "calendar released a cell early");
            buf.push(arrival);
        }
        if buf.is_empty() {
            self.arrival_buf = buf;
            return;
        }
        let track = self.stranded_tracking();
        let n = self.queues.len();
        let mut lists = std::mem::take(&mut self.node_arrivals);
        for (i, a) in buf.iter().enumerate() {
            lists[a.node.index()].push(i as u32);
        }
        let mut scratch = std::mem::take(&mut self.shards);
        let shards_used;
        {
            let route_span = self.profiler.span(Phase::Route);
            let router = self.router;
            let cfg = &self.cfg;
            let failures = &self.failures;
            let tracer = self.tracer;
            let schedule = self.schedule;
            let slot = self.slot;
            match &self.pool {
                Some(pool) if buf.len() >= PAR_MIN_ARRIVALS && n > 1 => {
                    let k = pool.threads().min(n);
                    // 64-aligned so each shard owns whole occupancy
                    // words; ceil(ceil(n/64) / (chunk/64)) == ceil(n/chunk),
                    // so the word bands pair 1:1 with the node bands.
                    let chunk = n.div_ceil(k).next_multiple_of(64);
                    shards_used = n.div_ceil(chunk);
                    if scratch.len() < shards_used {
                        scratch.resize_with(shards_used, ShardScratch::default);
                    }
                    let mut work: Vec<Mutex<Option<ArrivalShard<'_>>>> =
                        Vec::with_capacity(shards_used);
                    for (i, ((((q, r), l), o), s)) in self
                        .queues
                        .chunks_mut(chunk)
                        .zip(self.rngs.chunks_mut(chunk))
                        .zip(lists.chunks_mut(chunk))
                        .zip(self.occupancy.chunks_mut(chunk / 64))
                        .zip(scratch.iter_mut())
                        .enumerate()
                    {
                        s.reset();
                        work.push(Mutex::new(Some(ArrivalShard {
                            base: i * chunk,
                            queues: q,
                            rngs: r,
                            lists: l,
                            occ: o,
                            out: s,
                        })));
                    }
                    let buf_ref: &[Arrival] = &buf;
                    pool.run(work.len(), &|i| {
                        let mut shard = work[i]
                            .lock()
                            .expect("shard slot poisoned")
                            .take()
                            .expect("each shard is claimed once");
                        run_arrival_shard(
                            &mut shard, buf_ref, router, cfg, failures, track, tracer, schedule,
                            slot,
                        );
                    });
                }
                _ => {
                    shards_used = 1;
                    if scratch.is_empty() {
                        scratch.push(ShardScratch::default());
                    }
                    scratch[0].reset();
                    let mut shard = ArrivalShard {
                        base: 0,
                        queues: &mut self.queues,
                        rngs: &mut self.rngs,
                        lists: &mut lists,
                        occ: &mut self.occupancy,
                        out: &mut scratch[0],
                    };
                    run_arrival_shard(
                        &mut shard, &buf, router, cfg, failures, track, tracer, schedule, slot,
                    );
                }
            }
            drop(route_span);
        }

        // Merge, in shard (= node) order: deliveries under the deliver
        // span, completion records after it — flow bookkeeping and its
        // probe hooks are not per-cell delivery work (BENCH once showed
        // a 14x deliver-mean skew from exactly this misattribution).
        let mut finished = std::mem::take(&mut self.finished_flows);
        debug_assert!(finished.is_empty());
        for s in &mut scratch[..shards_used] {
            self.queued_cells = (self.queued_cells as isize + s.queued_delta) as usize;
            if track {
                self.stranded_adjust(s.stranded_delta);
            }
            for ev in s.hops.drain(..) {
                self.probe.on_hop(&ev);
            }
            for (cell, at_ns) in s.deliveries.drain(..) {
                // One span per delivered cell, as on the inline path:
                // `Deliver.calls` equals delivered cells either way.
                let span = self.profiler.span(Phase::Deliver);
                let record = self.apply_delivery(cell, at_ns);
                drop(span);
                if let Some(record) = record {
                    finished.push(record);
                }
            }
            for (node, cell, at_ns) in s.drops.drain(..) {
                self.metrics.dropped_cells += 1;
                self.probe.on_drop(&cell, node, at_ns);
            }
        }
        for record in finished.drain(..) {
            self.probe.on_flow_finish(&record, record.completion_ns);
            self.metrics.flows.push(record);
        }
        self.finished_flows = finished;
        buf.clear();
        self.arrival_buf = buf;
        self.node_arrivals = lists;
        self.shards = scratch;
    }

    /// The transmit walk, sharded by node range; merges shard outputs
    /// (calendar pushes, counters, first error) in node order.
    fn transmit_pass(&mut self, now: Nanos) -> Result<(), SimError> {
        let transmit_span = self.profiler.span(Phase::Transmit);
        let track = self.stranded_tracking();
        let n = self.queues.len();
        let mut scratch = std::mem::take(&mut self.shards);
        let shards_used;
        {
            let router = self.router;
            let cfg = &self.cfg;
            let failures = &self.failures;
            let schedule = self.schedule;
            let slot = self.slot;
            let tracer = self.tracer;
            let tables = &self.idle_tables;
            match &self.pool {
                Some(pool) if n > 1 => {
                    let k = pool.threads().min(n);
                    // 64-aligned: see the arrival pass.
                    let chunk = n.div_ceil(k).next_multiple_of(64);
                    shards_used = n.div_ceil(chunk);
                    if scratch.len() < shards_used {
                        scratch.resize_with(shards_used, ShardScratch::default);
                    }
                    let (mat_n, bands) = self.metrics.link_transmissions.row_bands_mut(chunk);
                    debug_assert_eq!(mat_n, n, "link matrix must match the network size");
                    let mut work: Vec<Mutex<Option<TransmitShard<'_>>>> =
                        Vec::with_capacity(shards_used);
                    for (i, (((q, band), o), s)) in self
                        .queues
                        .chunks_mut(chunk)
                        .zip(bands)
                        .zip(self.occupancy.chunks_mut(chunk / 64))
                        .zip(scratch.iter_mut())
                        .enumerate()
                    {
                        s.reset();
                        work.push(Mutex::new(Some(TransmitShard {
                            base: i * chunk,
                            queues: q,
                            links: band,
                            occ: o,
                            out: s,
                        })));
                    }
                    pool.run(work.len(), &|i| {
                        let mut shard = work[i]
                            .lock()
                            .expect("shard slot poisoned")
                            .take()
                            .expect("each shard is claimed once");
                        run_transmit_shard(
                            &mut shard, router, cfg, schedule, tables, slot, failures, track,
                            tracer,
                        );
                    });
                }
                _ => {
                    shards_used = 1;
                    if scratch.is_empty() {
                        scratch.push(ShardScratch::default());
                    }
                    scratch[0].reset();
                    let (mat_n, mut bands) = self.metrics.link_transmissions.row_bands_mut(n);
                    debug_assert_eq!(mat_n, n, "link matrix must match the network size");
                    let band = bands.next().expect("one full band");
                    let mut shard = TransmitShard {
                        base: 0,
                        queues: &mut self.queues,
                        links: band,
                        occ: &mut self.occupancy,
                        out: &mut scratch[0],
                    };
                    run_transmit_shard(
                        &mut shard, router, cfg, schedule, tables, slot, failures, track, tracer,
                    );
                }
            }
        }
        let mut err = None;
        let at_ns = now + self.cfg.slot_ns + self.cfg.propagation_ns;
        for s in &mut scratch[..shards_used] {
            self.queued_cells = (self.queued_cells as isize + s.queued_delta) as usize;
            if track {
                self.stranded_adjust(s.stranded_delta);
            }
            self.metrics.transmissions += s.transmissions;
            self.metrics.idle_circuit_slots += s.idle;
            self.metrics
                .link_transmissions
                .add_nonzero(s.links_nonzero_delta);
            for ev in s.hops.drain(..) {
                self.probe.on_hop(&ev);
            }
            for (from, node, cell) in s.sent.drain(..) {
                self.probe.on_transmit(&cell, from, node, now);
                self.inflight.push(self.slot, Arrival { at_ns, node, cell });
            }
            if err.is_none() {
                err = s.err.take();
            }
        }
        self.shards = scratch;
        drop(transmit_span);
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Applies every scripted fault event due by `now`, firing the
    /// probe's `on_fault` hook per event and maintaining the failure-
    /// episode bookkeeping behind the recovery-time metric.
    fn apply_due_faults(&mut self, now: Nanos) {
        let mut applied = false;
        while let Some(&event) = self.fault_plan.events().get(self.fault_cursor) {
            if event.at_ns > now {
                break;
            }
            self.fault_cursor += 1;
            let was_healthy = self.failures.is_empty();
            event.apply(&mut self.failures);
            applied = true;
            if was_healthy && !self.failures.is_empty() {
                self.metrics.failure_episodes += 1;
                self.episode.degraded = true;
                self.episode.onset_queued = self.total_queued();
                self.episode.awaiting_recovery_since = None;
            } else if !was_healthy && self.failures.is_empty() {
                self.episode.degraded = false;
                self.episode.awaiting_recovery_since = Some(now);
            }
            self.probe.on_fault(&FaultView {
                event: &event,
                slot: self.slot,
                now_ns: now,
                failed_nodes: self.failures.failed_nodes(),
                failed_links: self.failures.failed_links(),
            });
        }
        if applied {
            self.failure_epoch += 1;
            if let Some(health) = &self.health_mirror {
                health.publish(&self.failures);
            }
        }
    }

    /// Cells currently propagating on circuits.
    pub fn inflight_cells(&self) -> usize {
        self.inflight.len()
    }

    /// Counts queued cells that cannot make progress under the current
    /// failure set: cells whose destination node is failed, and cells
    /// waiting on a specific next hop whose circuit is down. Class-queued
    /// cells with a live destination are not stranded — any admissible
    /// circuit can still carry them.
    ///
    /// The first call after a failure-set change walks every queued
    /// cell; while the failure set is stable the count is maintained
    /// incrementally on queue pushes and pops, so repeated calls (the
    /// engine refreshes `Metrics::stranded_cells` every degraded slot)
    /// are O(1). Within one failure epoch a queued cell's strandedness
    /// is constant, which is what makes push/pop deltas sufficient;
    /// debug builds assert the incremental count against the walk.
    pub fn count_stranded(&self) -> u64 {
        if self.failures.is_empty() {
            return 0;
        }
        let memo = self.stranded.get();
        if memo.valid && memo.epoch == self.failure_epoch {
            debug_assert_eq!(
                memo.count,
                self.count_stranded_brute(),
                "incremental stranded count must match the brute-force walk"
            );
            return memo.count;
        }
        let count = self.count_stranded_brute();
        self.stranded.set(StrandedMemo {
            valid: true,
            epoch: self.failure_epoch,
            count,
        });
        count
    }

    /// The O(queued cells) reference walk behind [`Engine::count_stranded`].
    fn count_stranded_brute(&self) -> u64 {
        let mut stranded = 0u64;
        for (v, queues) in self.queues.iter().enumerate() {
            let v = NodeId(v as u32);
            for (next, cell) in queues.iter_cells() {
                let dead_dst = self.failures.node_failed(cell.dst);
                let dead_hop = next.is_some_and(|w| !self.failures.circuit_up(v, w));
                if dead_dst || dead_hop {
                    stranded += 1;
                }
            }
        }
        stranded
    }

    /// True when the stranded memo is live and per-push/pop deltas keep
    /// it exact — i.e. a failure set is active and unchanged since the
    /// memo was computed.
    fn stranded_tracking(&self) -> bool {
        let memo = self.stranded.get();
        memo.valid && memo.epoch == self.failure_epoch && !self.failures.is_empty()
    }

    /// Folds a queue-mutation delta into the live stranded memo.
    fn stranded_adjust(&self, delta: i64) {
        if delta == 0 {
            return;
        }
        let mut memo = self.stranded.get();
        debug_assert!(memo.valid && memo.epoch == self.failure_epoch);
        memo.count = (memo.count as i64 + delta) as u64;
        self.stranded.set(memo);
    }

    /// Drops the stranded memo outright (bulk queue surgery).
    fn stranded_invalidate(&self) {
        self.stranded.set(StrandedMemo::default());
    }

    /// Routes a cell sitting at `node` (freshly injected, or re-routed
    /// after a schedule swap). Arrival-pass routing uses the sharded
    /// equivalent, [`run_arrival_shard`].
    fn route_cell(&mut self, node: NodeId, mut cell: Cell, now: Nanos) {
        let router = self.router;
        let traced = self.tracer.is_some_and(|t| t.is_traced(cell.flow));
        // The phase is only known once the decision is in: terminal
        // decisions count as Deliver, everything else as Route.
        let mut span = self.profiler.span(Phase::Route);
        match router.decide(node, &mut cell, &mut self.rngs[node.index()]) {
            RouteDecision::Deliver => {
                span.set_phase(Phase::Deliver);
                let record = self.apply_delivery(cell, now);
                // Flow-completion bookkeeping (and its probe hooks,
                // which may write trace lines) is not delivery work;
                // close the span before it.
                drop(span);
                if traced {
                    let latency_ns = now.saturating_sub(cell.injected_ns);
                    self.probe.on_hop(&HopEvent::for_cell(
                        &cell,
                        node,
                        now,
                        HopKind::Deliver { latency_ns },
                    ));
                }
                if let Some(record) = record {
                    self.probe.on_flow_finish(&record, record.completion_ns);
                    self.metrics.flows.push(record);
                }
            }
            RouteDecision::ToNode(next) => {
                if self.queue_full(node) {
                    self.metrics.dropped_cells += 1;
                    self.probe.on_drop(&cell, node, now);
                    if traced {
                        self.probe
                            .on_hop(&HopEvent::for_cell(&cell, node, now, HopKind::Drop));
                    }
                    return;
                }
                if self.stranded_tracking()
                    && (self.failures.node_failed(cell.dst)
                        || !self.failures.circuit_up(node, next))
                {
                    self.stranded_adjust(1);
                }
                self.queues[node.index()].push_specific(next, cell);
                self.occupancy[node.index() / 64] |= 1u64 << (node.index() % 64);
                self.queued_cells += 1;
                if traced {
                    let wait =
                        circuit_wait_slots(self.schedule, self.slot, self.cfg.uplinks, node, next);
                    let depth = self.queues[node.index()].depth();
                    self.probe.on_hop(&HopEvent::for_cell(
                        &cell,
                        node,
                        now,
                        HopKind::Enqueue {
                            next: Some(next),
                            depth,
                            circuit_wait_slots: wait,
                        },
                    ));
                }
            }
            RouteDecision::ToClass(class) => {
                if self.queue_full(node) {
                    self.metrics.dropped_cells += 1;
                    self.probe.on_drop(&cell, node, now);
                    if traced {
                        self.probe
                            .on_hop(&HopEvent::for_cell(&cell, node, now, HopKind::Drop));
                    }
                    return;
                }
                if self.stranded_tracking() && self.failures.node_failed(cell.dst) {
                    self.stranded_adjust(1);
                }
                self.queues[node.index()].push_class(class, cell);
                self.occupancy[node.index() / 64] |= 1u64 << (node.index() % 64);
                self.queued_cells += 1;
                if traced {
                    let depth = self.queues[node.index()].depth();
                    self.probe.on_hop(&HopEvent::for_cell(
                        &cell,
                        node,
                        now,
                        HopKind::Enqueue {
                            next: None,
                            depth,
                            circuit_wait_slots: 0,
                        },
                    ));
                }
            }
            RouteDecision::Drop => {
                self.metrics.dropped_cells += 1;
                self.probe.on_drop(&cell, node, now);
                if traced {
                    self.probe
                        .on_hop(&HopEvent::for_cell(&cell, node, now, HopKind::Drop));
                }
            }
        }
    }

    /// Applies one delivery to the metrics and flow slab; returns the
    /// completion record when this cell finished its flow. The caller
    /// pushes the record and fires `on_flow_finish` outside the deliver
    /// span.
    fn apply_delivery(&mut self, cell: Cell, now: Nanos) -> Option<FlowRecord> {
        let latency = now.saturating_sub(cell.injected_ns);
        self.metrics
            .on_delivered(cell.hops, latency, self.cfg.cell_bytes);
        if !self.failures.is_empty() {
            self.metrics.delivered_during_failure += 1;
        }
        self.probe.on_delivery(&cell, latency, now);
        self.table.record_delivery(cell.flow, cell.hops, now)
    }

    /// True when `node`'s queues are at the configured cap.
    fn queue_full(&self, node: NodeId) -> bool {
        self.cfg.node_queue_cap > 0 && self.queues[node.index()].depth() >= self.cfg.node_queue_cap
    }

    /// Installs a new circuit schedule mid-run — the §5 update operation
    /// at packet level. Cells already queued keep their routing
    /// decisions; call [`Engine::reroute_queued`] afterwards to re-route
    /// them under the new topology (the "drain" step).
    ///
    /// # Panics
    /// Panics if the new schedule covers a different node count.
    pub fn install_schedule(&mut self, schedule: &'a CircuitSchedule) {
        assert_eq!(
            schedule.n(),
            self.schedule.n(),
            "schedule update must cover the same nodes"
        );
        let _span = self.profiler.span(Phase::Reconfigure);
        self.schedule = schedule;
        self.idle_tables = IdleTables::build(schedule, &self.cfg);
        self.probe
            .on_reconfiguration(self.slot, self.cfg.slot_start(self.slot));
    }

    /// Replaces the router mid-run (paired with [`Engine::install_schedule`]
    /// when an update changes the clique structure). Queued cells should
    /// be re-routed afterwards.
    ///
    /// # Panics
    /// Panics if the new router declares different classes than the one
    /// it replaces — per-class queues must stay meaningful.
    pub fn install_router(&mut self, router: &'a dyn Router) {
        assert_eq!(
            router.classes(),
            self.router.classes(),
            "router swap must keep the class set"
        );
        self.router = router;
    }

    /// Drains every queued cell and re-routes it from its current node —
    /// used after a schedule update to re-validate routing state (§5).
    ///
    /// Returns the number of cells re-routed.
    pub fn reroute_queued(&mut self) -> Result<usize, SimError> {
        let now = self.cfg.slot_start(self.slot);
        // Bulk surgery: strandedness is recomputed on the next query.
        self.stranded_invalidate();
        let mut total = 0;
        for v in 0..self.queues.len() {
            let cells = self.queues[v].drain_all();
            total += cells.len();
            self.queued_cells -= cells.len();
            // The re-routes below push back into this node's queues and
            // re-set the bit whenever anything actually lands there.
            self.occupancy[v / 64] &= !(1u64 << (v % 64));
            for cell in cells {
                self.route_cell(NodeId(v as u32), cell, now);
            }
        }
        Ok(total)
    }

    /// Captures the complete engine state as a [`Snapshot`].
    ///
    /// Valid at slot boundaries only — that is, between calls to
    /// [`Engine::step`]/[`Engine::run_slots`], which is the only time a
    /// caller can observe the engine anyway. Restoring the snapshot
    /// (see [`Engine::restore`]) and running the remaining slots is
    /// bit-identical to never having stopped, at any
    /// `SimConfig::engine_threads`.
    ///
    /// The snapshot does not capture the schedule, the router, the
    /// probe, or an attached health mirror: the first two are borrowed
    /// configuration the restoring caller must rebuild (the snapshot
    /// *does* record the router's class ids and the network size so a
    /// mismatched rebuild is rejected), and the last two are
    /// re-attached explicitly. Run drivers persist probe state through
    /// [`Snapshot::attach_blob`].
    pub fn checkpoint(&self) -> Snapshot {
        let (delay_slots, head_slot, stamps, buckets) = self.inflight.parts();
        Snapshot {
            cfg: self.cfg,
            n: self.queues.len() as u64,
            slot: self.slot,
            class_ids: self.router.classes().iter().map(|c| c.0 as u16).collect(),
            rng_states: self.rngs.iter().map(|r| r.raw_state()).collect(),
            queues: self
                .queues
                .iter()
                .map(|q| {
                    let (specific, class) = q.export_cells();
                    QueuesSnap { specific, class }
                })
                .collect(),
            queued_cells: self.queued_cells as u64,
            cal_delay_slots: delay_slots,
            cal_head_slot: head_slot,
            cal_stamps: stamps.to_vec(),
            cal_buckets: buckets
                .iter()
                .map(|b| b.iter().copied().collect())
                .collect(),
            // Pending flows in ascending original-key order; restore
            // renumbers them 0..m, which preserves the arrival heap's
            // (arrival_ns, key) tie-break order exactly.
            future: self.future_store.iter().filter_map(|f| *f).collect(),
            injecting: self
                .injecting
                .iter()
                .map(|d| d.iter().map(|&i| i as u64).collect())
                .collect(),
            active: self.table.to_slab(),
            active_free: self.table.free_slots(),
            failed_nodes: self
                .failures
                .failed_node_ids()
                .iter()
                .map(|n| n.0)
                .collect(),
            failed_links: self
                .failures
                .failed_link_ids()
                .iter()
                .map(|&(a, b)| (a.0, b.0))
                .collect(),
            failure_epoch: self.failure_epoch,
            fault_events: self.fault_plan.events().to_vec(),
            fault_cursor: self.fault_cursor as u64,
            episode: self.episode,
            metrics: self.metrics.clone(),
            blobs: Vec::new(),
        }
    }

    /// Rebuilds an engine from a snapshot, validating it against the
    /// schedule and router it will run with. The inverse of
    /// [`Engine::checkpoint`]; see [`Engine::restore`] for the
    /// uninstrumented convenience form.
    ///
    /// Every structural invariant is checked — node count, class ids,
    /// slab/free-list/injection-list consistency, queue-count
    /// bookkeeping, calendar shape — so a decoded-but-inconsistent
    /// snapshot yields [`RestoreError`] rather than an engine that
    /// panics later.
    pub fn restore_with_probe_and_profiler(
        snapshot: &Snapshot,
        schedule: &'a CircuitSchedule,
        router: &'a dyn Router,
        probe: P,
        profiler: F,
    ) -> Result<Self, RestoreError> {
        let n = schedule.n();
        if snapshot.n as usize != n {
            return Err(RestoreError::NodeCountMismatch {
                snapshot: snapshot.n as usize,
                schedule: n,
            });
        }
        let router_classes: Vec<u16> = router.classes().iter().map(|c| c.0 as u16).collect();
        if snapshot.class_ids != router_classes {
            return Err(RestoreError::ClassMismatch {
                snapshot: snapshot.class_ids.clone(),
                router: router_classes,
            });
        }
        let cfg = snapshot.cfg;
        let bad = |reason: String| RestoreError::Inconsistent { reason };
        if cfg.slot_ns == 0 {
            return Err(bad("slot_ns is zero".into()));
        }
        let delay_slots = (cfg.slot_ns + cfg.propagation_ns).div_ceil(cfg.slot_ns);
        if snapshot.cal_delay_slots != delay_slots {
            return Err(bad(format!(
                "calendar delay {} does not match the config-derived {delay_slots}",
                snapshot.cal_delay_slots
            )));
        }
        if snapshot.rng_states.len() != n {
            return Err(bad(format!(
                "{} RNG streams for {n} nodes",
                snapshot.rng_states.len()
            )));
        }
        if snapshot.queues.len() != n {
            return Err(bad(format!(
                "{} queue sets for {n} nodes",
                snapshot.queues.len()
            )));
        }
        if snapshot.injecting.len() != n {
            return Err(bad(format!(
                "{} injection lists for {n} nodes",
                snapshot.injecting.len()
            )));
        }
        if snapshot.metrics.link_transmissions.dim() as usize != n {
            return Err(bad(format!(
                "link matrix covers {} nodes, network has {n}",
                snapshot.metrics.link_transmissions.dim()
            )));
        }

        // Active-flow slab: the free list must name exactly the vacant
        // slots (no duplicates), injection lists must point at live
        // slots, and no flow id may occupy two slots.
        let slab_len = snapshot.active.len();
        let mut seen_free = vec![false; slab_len];
        for &idx in &snapshot.active_free {
            let idx = idx as usize;
            let vacant = snapshot.active.get(idx).is_some_and(|s| s.is_none());
            if !vacant || seen_free[idx] {
                return Err(bad(format!("free-list entry {idx} is not a vacant slot")));
            }
            seen_free[idx] = true;
        }
        let vacant_total = snapshot.active.iter().filter(|s| s.is_none()).count();
        if snapshot.active_free.len() != vacant_total {
            return Err(bad(format!(
                "free list has {} entries for {vacant_total} vacant slots",
                snapshot.active_free.len()
            )));
        }
        let mut active_index: HashMap<FlowId, usize, FastHashBuilder> = HashMap::default();
        for (i, slot) in snapshot.active.iter().enumerate() {
            if let Some(af) = slot {
                if af.flow.src.index() >= n || af.flow.dst.index() >= n {
                    return Err(bad(format!(
                        "active flow {:?} endpoint out of range",
                        af.flow.id
                    )));
                }
                if active_index.insert(af.flow.id, i).is_some() {
                    return Err(bad(format!(
                        "flow {:?} occupies two slab slots",
                        af.flow.id
                    )));
                }
            }
        }
        let mut injecting: Vec<VecDeque<usize>> = Vec::with_capacity(n);
        let mut injecting_flows = 0usize;
        for list in &snapshot.injecting {
            let mut deque = VecDeque::with_capacity(list.len());
            for &idx in list {
                let idx = idx as usize;
                if snapshot.active.get(idx).is_none_or(|s| s.is_none()) {
                    return Err(bad(format!("injection list references vacant slot {idx}")));
                }
                deque.push_back(idx);
            }
            injecting_flows += deque.len();
            injecting.push(deque);
        }

        // Queues: replay every FIFO through the same push paths a live
        // run uses. Class ids were validated against the router above,
        // so push_class cannot hit its undeclared-class panic.
        let mut queues: Vec<NodeQueues> =
            (0..n).map(|_| NodeQueues::new(router.classes())).collect();
        let mut queued_cells = 0usize;
        for (v, qs) in snapshot.queues.iter().enumerate() {
            for (next, cells) in &qs.specific {
                if *next as usize >= n {
                    return Err(bad(format!("queued cells for next hop {next} (n = {n})")));
                }
                for c in cells {
                    queues[v].push_specific(NodeId(*next), *c);
                }
                queued_cells += cells.len();
            }
            for (class, cells) in &qs.class {
                let id = u8::try_from(*class)
                    .map_err(|_| bad(format!("class id {class} out of range")))?;
                if !router_classes.contains(class) {
                    return Err(bad(format!("queued cells for undeclared class {class}")));
                }
                for c in cells {
                    queues[v].push_class(ClassId(id), *c);
                }
                queued_cells += cells.len();
            }
        }
        if queued_cells as u64 != snapshot.queued_cells {
            return Err(bad(format!(
                "queued-cell counter {} but {queued_cells} cells in queues",
                snapshot.queued_cells
            )));
        }

        for bucket in &snapshot.cal_buckets {
            for a in bucket {
                if a.node.index() >= n {
                    return Err(bad(format!("in-flight cell arriving at node {}", a.node)));
                }
            }
        }
        let inflight = SlotCalendar::from_parts(
            snapshot.cal_delay_slots,
            snapshot.cal_head_slot,
            snapshot.cal_stamps.clone(),
            snapshot
                .cal_buckets
                .iter()
                .map(|b| b.iter().copied().collect())
                .collect(),
        )
        .ok_or_else(|| bad("calendar ring shape is invalid".into()))?;

        let mut future_flows = BinaryHeap::with_capacity(snapshot.future.len());
        let mut future_store = Vec::with_capacity(snapshot.future.len());
        for f in &snapshot.future {
            if f.src.index() >= n || f.dst.index() >= n {
                return Err(bad(format!(
                    "pending flow {:?} endpoint out of range",
                    f.id
                )));
            }
            let key = future_store.len() as u64;
            future_flows.push(Reverse((f.arrival_ns, key)));
            future_store.push(Some(*f));
        }
        let future_pending = future_store.len();

        let mut failures = FailureSet::none();
        for &v in &snapshot.failed_nodes {
            failures.fail_node(NodeId(v));
        }
        for &(a, b) in &snapshot.failed_links {
            failures.fail_link(NodeId(a), NodeId(b));
        }
        // Events are stored sorted, so re-pushing in order rebuilds the
        // identical plan (ties keep their relative order).
        let mut fault_plan = FaultPlan::new();
        for e in &snapshot.fault_events {
            fault_plan.push(*e);
        }
        if snapshot.fault_cursor as usize > fault_plan.events().len() {
            return Err(bad(format!(
                "fault cursor {} past the {} scripted events",
                snapshot.fault_cursor,
                fault_plan.events().len()
            )));
        }

        // The structural checks above guaranteed exactly what
        // `from_slab` assumes: free list == vacant slots, unique ids.
        drop(active_index);
        let table = FlowTable::from_slab(
            &snapshot.active,
            snapshot.active_free.iter().map(|&i| i as u32).collect(),
        );
        let mut occupancy = vec![0u64; n.div_ceil(64)];
        for (v, q) in queues.iter().enumerate() {
            if !q.is_empty() {
                occupancy[v / 64] |= 1u64 << (v % 64);
            }
        }

        Ok(Engine {
            rngs: snapshot
                .rng_states
                .iter()
                .map(|&s| NodeRng::from_raw_state(s))
                .collect(),
            schedule,
            router,
            queues,
            future_flows,
            future_store,
            future_pending,
            injecting,
            injecting_flows,
            table,
            occupancy,
            idle_tables: IdleTables::build(schedule, &cfg),
            inflight,
            queued_cells,
            failures,
            failure_epoch: snapshot.failure_epoch,
            // Left invalid: the next stranded query recomputes the same
            // count the uninterrupted run's incremental memo holds.
            stranded: MemoCell::new(StrandedMemo::default()),
            fault_plan,
            fault_cursor: snapshot.fault_cursor as usize,
            health_mirror: None,
            episode: snapshot.episode,
            metrics: snapshot.metrics.clone(),
            slot: snapshot.slot,
            pool: (cfg.engine_threads > 1).then(|| WorkerPool::new(cfg.engine_threads)),
            shards: Vec::new(),
            arrival_buf: Vec::new(),
            node_arrivals: vec![Vec::new(); n],
            finished_flows: Vec::new(),
            tracer: (cfg.trace_one_in > 0).then(|| FlowSampler::new(cfg.seed, cfg.trace_one_in)),
            ff_enabled: false,
            probe,
            profiler,
            cfg,
        })
    }

    /// Returns the probe *without* firing [`Probe::on_run_end`] — for
    /// drivers that checkpoint mid-run and carry the probe across a
    /// restore instead of closing the run (contrast [`Engine::finish`]).
    pub fn into_probe(self) -> P {
        self.probe
    }
}

/// Routes one shard's grouped arrivals: node-ascending within the
/// shard's range, arrival order within a node. Queue pushes are applied
/// directly (node-local); deliveries and drops go to the scratch for
/// the engine's ordered merge.
#[allow(clippy::too_many_arguments)]
fn run_arrival_shard(
    shard: &mut ArrivalShard<'_>,
    buf: &[Arrival],
    router: &dyn Router,
    cfg: &SimConfig,
    failures: &FailureSet,
    track_stranded: bool,
    tracer: Option<FlowSampler>,
    schedule: &CircuitSchedule,
    slot: u64,
) {
    for li in 0..shard.lists.len() {
        if shard.lists[li].is_empty() {
            continue;
        }
        let node = NodeId((shard.base + li) as u32);
        let queue = &mut shard.queues[li];
        let rng = &mut shard.rngs[li];
        for &i in shard.lists[li].iter() {
            let a = buf[i as usize];
            debug_assert_eq!(a.node, node, "arrival grouped under the wrong node");
            let mut cell = a.cell;
            let traced = tracer.is_some_and(|t| t.is_traced(cell.flow));
            match router.decide(node, &mut cell, rng) {
                RouteDecision::Deliver => {
                    debug_assert_eq!(node, cell.dst, "router delivered at the wrong node");
                    if traced {
                        let latency_ns = a.at_ns.saturating_sub(cell.injected_ns);
                        shard.out.hops.push(HopEvent::for_cell(
                            &cell,
                            node,
                            a.at_ns,
                            HopKind::Deliver { latency_ns },
                        ));
                    }
                    shard.out.deliveries.push((cell, a.at_ns));
                }
                RouteDecision::ToNode(next) => {
                    if cfg.node_queue_cap > 0 && queue.depth() >= cfg.node_queue_cap {
                        if traced {
                            shard.out.hops.push(HopEvent::for_cell(
                                &cell,
                                node,
                                a.at_ns,
                                HopKind::Drop,
                            ));
                        }
                        shard.out.drops.push((node, cell, a.at_ns));
                        continue;
                    }
                    if track_stranded
                        && (failures.node_failed(cell.dst) || !failures.circuit_up(node, next))
                    {
                        shard.out.stranded_delta += 1;
                    }
                    queue.push_specific(next, cell);
                    shard.occ[li / 64] |= 1u64 << (li % 64);
                    shard.out.queued_delta += 1;
                    if traced {
                        let wait = circuit_wait_slots(schedule, slot, cfg.uplinks, node, next);
                        shard.out.hops.push(HopEvent::for_cell(
                            &cell,
                            node,
                            a.at_ns,
                            HopKind::Enqueue {
                                next: Some(next),
                                depth: queue.depth(),
                                circuit_wait_slots: wait,
                            },
                        ));
                    }
                }
                RouteDecision::ToClass(class) => {
                    if cfg.node_queue_cap > 0 && queue.depth() >= cfg.node_queue_cap {
                        if traced {
                            shard.out.hops.push(HopEvent::for_cell(
                                &cell,
                                node,
                                a.at_ns,
                                HopKind::Drop,
                            ));
                        }
                        shard.out.drops.push((node, cell, a.at_ns));
                        continue;
                    }
                    if track_stranded && failures.node_failed(cell.dst) {
                        shard.out.stranded_delta += 1;
                    }
                    queue.push_class(class, cell);
                    shard.occ[li / 64] |= 1u64 << (li % 64);
                    shard.out.queued_delta += 1;
                    if traced {
                        shard.out.hops.push(HopEvent::for_cell(
                            &cell,
                            node,
                            a.at_ns,
                            HopKind::Enqueue {
                                next: None,
                                depth: queue.depth(),
                                circuit_wait_slots: 0,
                            },
                        ));
                    }
                }
                RouteDecision::Drop => {
                    if traced {
                        shard.out.hops.push(HopEvent::for_cell(
                            &cell,
                            node,
                            a.at_ns,
                            HopKind::Drop,
                        ));
                    }
                    shard.out.drops.push((node, cell, a.at_ns));
                }
            }
        }
        shard.lists[li].clear();
    }
}

/// Transmits one popped cell on circuit `v → w`: the shared tail of the
/// healthy and degraded transmit walks. Returns `true` when the cell was
/// actually sent (hop-bound violations are recorded, not sent).
#[allow(clippy::too_many_arguments)]
#[inline]
fn transmit_popped(
    shard_out: &mut ShardScratch,
    depth_after: usize,
    mut cell: Cell,
    v: NodeId,
    w: NodeId,
    router: &dyn Router,
    max_hops: u8,
    now: Nanos,
    tracer: Option<FlowSampler>,
    links_row: &mut LinkRow,
) {
    router.on_transmit(&mut cell, v, w);
    cell.hops += 1;
    if cell.hops > max_hops {
        // Record the first violation in canonical order and finish the
        // pass: both the inline and the sharded path then abort with
        // identical state.
        if shard_out.err.is_none() {
            shard_out.err = Some(SimError::HopBoundExceeded {
                flow: cell.flow,
                hops: cell.hops,
                bound: max_hops,
            });
        }
        return;
    }
    shard_out.transmissions += 1;
    if LinkMatrix::bump_row(links_row, w.0) {
        shard_out.links_nonzero_delta += 1;
    }
    if tracer.is_some_and(|t| t.is_traced(cell.flow)) {
        shard_out.hops.push(HopEvent::for_cell(
            &cell,
            v,
            now,
            HopKind::Transmit { to: w, depth_after },
        ));
    }
    shard_out.sent.push((v, w, cell));
}

/// Walks one shard's node range across every uplink, popping node-local
/// queues and buffering transmitted cells in `(node, uplink)` order.
///
/// On a healthy fabric the walk is occupancy-driven: every scheduled
/// port in a 64-node word is charged idle up front from the precomputed
/// [`IdleTables`], a zero word skips all 64 nodes, and each successful
/// pop refunds one pre-charged idle port — the counters come out
/// identical to the per-node reference walk, which remains in place for
/// degraded fabrics (failure checks are per-circuit there anyway).
#[allow(clippy::too_many_arguments)]
fn run_transmit_shard(
    shard: &mut TransmitShard<'_>,
    router: &dyn Router,
    cfg: &SimConfig,
    schedule: &CircuitSchedule,
    tables: &IdleTables,
    slot: u64,
    failures: &FailureSet,
    track_stranded: bool,
    tracer: Option<FlowSampler>,
) {
    let now = cfg.slot_start(slot);
    let max_hops = router.max_hops();
    // One matching resolution per uplink per shard call, as in the old
    // hoisted serial walk.
    let matchings = staggered_matchings(schedule, cfg, slot);
    if failures.is_empty() {
        debug_assert_eq!(shard.base % 64, 0, "shard bases must be word-aligned");
        for gw_local in 0..shard.occ.len() {
            let gw = shard.base / 64 + gw_local;
            // Pre-charge every scheduled port in this word as idle;
            // pops below refund theirs.
            for &(pi, _) in &matchings {
                shard.out.idle += tables.words[pi][gw] as u64;
            }
            let mut bits = shard.occ[gw_local];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let li = gw_local * 64 + b;
                let v = NodeId((shard.base + li) as u32);
                for &(_, matching) in &matchings {
                    let Some(w) = matching.dst_of(v) else {
                        continue; // idle port this slot
                    };
                    let Some(cell) =
                        shard.queues[li].pop_for_circuit(router, v, w, cfg.class_scan_limit)
                    else {
                        continue; // stays idle, as pre-charged
                    };
                    shard.out.idle -= 1;
                    shard.out.queued_delta -= 1;
                    transmit_popped(
                        shard.out,
                        shard.queues[li].depth(),
                        cell,
                        v,
                        w,
                        router,
                        max_hops,
                        now,
                        tracer,
                        &mut shard.links[li],
                    );
                }
                if shard.queues[li].is_empty() {
                    shard.occ[gw_local] &= !(1u64 << b);
                }
            }
        }
        return;
    }
    // Degraded fabric: the per-node reference walk with per-circuit
    // health checks (a down circuit is neither idle nor transmitting).
    for li in 0..shard.queues.len() {
        let v = NodeId((shard.base + li) as u32);
        let mut popped = false;
        for &(_, matching) in &matchings {
            let Some(w) = matching.dst_of(v) else {
                continue; // idle port this slot
            };
            if !failures.circuit_up(v, w) {
                continue;
            }
            match shard.queues[li].pop_for_circuit(router, v, w, cfg.class_scan_limit) {
                Some(cell) => {
                    popped = true;
                    shard.out.queued_delta -= 1;
                    // A popped cell rode a live circuit, so it was
                    // stranded only if its destination is dead.
                    if track_stranded && failures.node_failed(cell.dst) {
                        shard.out.stranded_delta -= 1;
                    }
                    transmit_popped(
                        shard.out,
                        shard.queues[li].depth(),
                        cell,
                        v,
                        w,
                        router,
                        max_hops,
                        now,
                        tracer,
                        &mut shard.links[li],
                    );
                }
                None => shard.out.idle += 1,
            }
        }
        if popped && shard.queues[li].is_empty() {
            shard.occ[li / 64] &= !(1u64 << (li % 64));
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::DirectRouter;
    use sorn_topology::builders::round_robin;

    fn flow(id: u64, src: u32, dst: u32, bytes: u64, at: Nanos) -> Flow {
        Flow {
            id: FlowId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: bytes,
            arrival_ns: at,
        }
    }

    #[test]
    fn single_cell_direct_delivery() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let cfg = SimConfig::default();
        let mut eng = Engine::new(cfg, &sched, &router);
        eng.add_flows([flow(1, 0, 1, 1000, 0)]).unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        let m = eng.metrics();
        assert_eq!(m.delivered_cells, 1);
        assert_eq!(m.flows.len(), 1);
        assert_eq!(m.flows[0].max_hops, 1);
        // Circuit 0->1 is up in slot 0; delivery = slot + propagation.
        assert_eq!(m.flows[0].completion_ns, 600);
    }

    #[test]
    fn waits_for_the_right_circuit() {
        let sched = round_robin(4).unwrap(); // slots: +1, +2, +3
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        // 0 -> 3 comes up in slot 2 (matching m3 at index 2).
        eng.add_flows([flow(1, 0, 3, 100, 0)]).unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        let m = eng.metrics();
        // Transmitted in slot 2: completion = 200 + 100 + 500.
        assert_eq!(m.flows[0].completion_ns, 800);
    }

    #[test]
    fn multi_cell_flow_completes_in_order_of_circuits() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        // 3 cells from 0 to 1; circuit 0->1 up once per 3-slot period.
        eng.add_flows([flow(1, 0, 1, 3 * 1250, 0)]).unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        let m = eng.metrics();
        assert_eq!(m.delivered_cells, 3);
        // Slots 0, 3, 6 carry the cells; last arrives at 600+600.
        assert_eq!(m.flows[0].completion_ns, 600 + 600);
        assert_eq!(m.transmissions, 3);
        assert!((m.delivery_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn staggered_uplinks_speed_up_transfer() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut cfg = SimConfig::default();
        cfg.uplinks = 3; // one plane per distinct matching
        let mut eng = Engine::new(cfg, &sched, &router);
        eng.add_flows([flow(1, 0, 1, 3 * 1250, 0)]).unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        let m = eng.metrics();
        // With 3 staggered planes, 0->1 is up on some plane every slot.
        assert_eq!(m.flows[0].completion_ns, 600 + 200);
    }

    #[test]
    fn failed_link_blocks_traffic() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([flow(1, 0, 1, 100, 0)]).unwrap();
        eng.failures_mut().fail_link(NodeId(0), NodeId(1));
        assert!(!eng.run_until_drained(50).unwrap());
        assert_eq!(eng.metrics().delivered_cells, 0);
        // Restore and drain.
        eng.failures_mut().restore_link(NodeId(0), NodeId(1));
        assert!(eng.run_until_drained(50).unwrap());
        assert_eq!(eng.metrics().delivered_cells, 1);
    }

    #[test]
    fn fault_plan_drives_outage_and_recovery_metrics() {
        use crate::fault::FaultPlan;
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        // 10 cells 0 -> 1; the direct circuit dies during the transfer.
        eng.add_flows([flow(1, 0, 1, 10 * 1250, 0)]).unwrap();
        let mut plan = FaultPlan::new();
        plan.link_outage(NodeId(0), NodeId(1), 500, 3_000);
        eng.set_fault_plan(plan);
        assert!(eng.run_until_drained(10_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.delivered_cells, 10);
        assert_eq!(m.failure_episodes, 1);
        assert!(m.failure_slots > 0);
        assert_eq!(
            m.recovery_times_ns.len(),
            1,
            "the drained run recovered from its one episode"
        );
        // Deliveries resumed only after restoration in this direct
        // scheme, so degraded goodput is strictly worse than healthy.
        assert!(m.degraded_goodput_ratio() < 1.0);
    }

    #[test]
    fn fault_plan_fires_probe_hook() {
        use crate::fault::{FaultAction, FaultPlan, FaultView};
        #[derive(Default)]
        struct FaultLog(Vec<(Nanos, FaultAction)>);
        impl Probe for FaultLog {
            fn on_fault(&mut self, view: &FaultView<'_>) {
                self.0.push((view.now_ns, view.event.action));
            }
        }
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng =
            Engine::with_probe(SimConfig::default(), &sched, &router, FaultLog::default());
        let mut plan = FaultPlan::new();
        plan.node_outage(NodeId(2), 0, 300);
        eng.set_fault_plan(plan);
        eng.run_slots(10).unwrap();
        let log = eng.finish();
        assert_eq!(log.0.len(), 2);
        assert_eq!(log.0[0].1, FaultAction::Fail);
        assert_eq!(log.0[1].1, FaultAction::Restore);
        assert!(log.0[0].0 <= log.0[1].0);
    }

    #[test]
    fn health_mirror_tracks_fault_plan() {
        use crate::fault::{FaultPlan, LinkHealth};
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let health = LinkHealth::new();
        eng.set_health_mirror(health.clone());
        assert!(health.is_healthy());
        let mut plan = FaultPlan::new();
        plan.link_outage(NodeId(0), NodeId(1), 0, 500);
        eng.set_fault_plan(plan);
        eng.run_slots(1).unwrap();
        assert!(!health.circuit_up(NodeId(0), NodeId(1)));
        eng.run_slots(10).unwrap();
        assert!(health.is_healthy());
    }

    #[test]
    fn stranded_cells_counted_at_finish() {
        use crate::fault::FaultPlan;
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([flow(1, 0, 1, 5 * 1250, 0)]).unwrap();
        // The link dies immediately and never comes back.
        let mut plan = FaultPlan::new();
        plan.fail_link_at(0, NodeId(0), NodeId(1));
        eng.set_fault_plan(plan);
        assert!(!eng.run_until_drained(100).unwrap());
        let stranded = eng.count_stranded();
        assert_eq!(stranded as usize, eng.total_queued());
        let injected = eng.metrics().injected_cells;
        let inflight = eng.inflight_cells() as u64;
        let m = eng.metrics().clone();
        // Accounting identity: nothing is lost, only stranded.
        assert_eq!(
            injected,
            m.delivered_cells + m.dropped_cells + stranded + inflight
        );
    }

    #[test]
    fn flows_to_out_of_range_nodes_are_rejected() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let err = eng.add_flows([flow(1, 0, 9, 100, 0)]).unwrap_err();
        assert!(matches!(err, SimError::NodeOutOfRange { .. }));
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let sched = round_robin(8).unwrap();
        let router = DirectRouter;
        let flows: Vec<Flow> = (0..20)
            .map(|i| flow(i, (i % 8) as u32, ((i + 3) % 8) as u32, 5000, i * 70))
            .collect();
        let run = |seed| {
            let mut cfg = SimConfig::default();
            cfg.seed = seed;
            let mut eng = Engine::new(cfg, &sched, &router);
            eng.add_flows(flows.clone()).unwrap();
            eng.run_until_drained(10_000).unwrap();
            (
                eng.metrics().delivered_cells,
                eng.metrics().cell_latency_sum_ns,
                eng.metrics().transmissions,
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn injection_respects_line_rate() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let cfg = SimConfig::default(); // 1 uplink
        let mut eng = Engine::new(cfg, &sched, &router);
        eng.add_flows([flow(1, 0, 1, 100 * 1250, 0)]).unwrap();
        eng.run_slots(10).unwrap();
        // At 1 uplink, at most 1 cell injected per slot.
        assert!(eng.metrics().injected_cells <= 10);
    }

    #[test]
    fn idle_circuits_are_counted() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.run_slots(3).unwrap();
        // No traffic at all: every scheduled circuit idled (4 nodes x 3 slots).
        assert_eq!(eng.metrics().idle_circuit_slots, 12);
        assert_eq!(eng.metrics().circuit_utilization(), 0.0);
    }

    #[test]
    fn live_schedule_swap_mid_run() {
        // Start on a schedule that never provides the needed circuit,
        // then install one that does — traffic drains after the update.
        let ms_bad = vec![sorn_topology::Matching::cyclic(4, 2)];
        let bad = sorn_topology::CircuitSchedule::from_matchings(ms_bad).unwrap();
        let good = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &bad, &router);
        eng.add_flows([flow(1, 0, 1, 1250, 0)]).unwrap();
        assert!(!eng.run_until_drained(100).unwrap(), "0->1 never scheduled");
        eng.install_schedule(&good);
        let rerouted = eng.reroute_queued().unwrap();
        assert_eq!(rerouted, 1);
        assert!(eng.run_until_drained(100).unwrap());
        assert_eq!(eng.metrics().flows.len(), 1);
    }

    #[test]
    fn schedule_swap_with_cells_inflight() {
        // Swap the schedule while a cell is still propagating: the
        // arrival calendar must carry it across the swap and deliver
        // under the new schedule.
        let a = round_robin(4).unwrap();
        let ms = vec![sorn_topology::Matching::cyclic(4, 2)];
        let b = sorn_topology::CircuitSchedule::from_matchings(ms).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &a, &router);
        eng.add_flows([flow(1, 0, 1, 1250, 0)]).unwrap();
        eng.run_slots(1).unwrap(); // transmitted in slot 0, now in flight
        assert_eq!(eng.inflight_cells(), 1);
        eng.install_schedule(&b);
        eng.reroute_queued().unwrap();
        assert!(eng.run_until_drained(100).unwrap());
        assert_eq!(eng.metrics().delivered_cells, 1);
        // Same landing time as without the swap: propagation is fixed.
        assert_eq!(eng.metrics().flows[0].completion_ns, 600);
    }

    #[test]
    fn flow_slots_recycle_across_sequential_flows() {
        // Each flow finishes before the next arrives, so the slab hands
        // the same slot out repeatedly; records must stay per-flow.
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([
            flow(10, 0, 1, 1250, 0),
            flow(20, 0, 1, 1250, 5_000),
            flow(30, 2, 3, 1250, 10_000),
        ])
        .unwrap();
        assert!(eng.run_until_drained(1_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.delivered_cells, 3);
        let ids: Vec<u64> = m.flows.iter().map(|f| f.id.0).collect();
        assert_eq!(ids, vec![10, 20, 30]);
        assert!(m.flows.iter().all(|f| f.max_hops == 1));
    }

    #[test]
    #[should_panic(expected = "same nodes")]
    fn schedule_swap_rejects_size_change() {
        let a = round_robin(4).unwrap();
        let b = round_robin(5).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &a, &router);
        eng.install_schedule(&b);
    }

    #[test]
    fn link_transmissions_sum_to_total() {
        let sched = round_robin(6).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows: Vec<Flow> = (0..6u32)
            .map(|s| flow(s as u64, s, (s + 2) % 6, 3 * 1250, 0))
            .collect();
        eng.add_flows(flows).unwrap();
        assert!(eng.run_until_drained(10_000).unwrap());
        let m = eng.metrics();
        let sum: u64 = m.link_transmissions.values().sum();
        assert_eq!(sum, m.transmissions);
        // Direct routing: only (s, s+2) links carry traffic.
        for (a, b) in m.link_transmissions.keys() {
            assert_eq!((a + 2) % 6, b);
        }
        // Symmetric load: CV 0.
        assert!(m.link_load_cv() < 1e-12);
    }

    #[test]
    fn queue_cap_drops_excess_cells() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut cfg = SimConfig::default();
        cfg.node_queue_cap = 2;
        let mut eng = Engine::new(cfg, &sched, &router);
        // 10 cells toward one destination: the direct circuit drains one
        // cell per 3-slot period while injection runs at 1 cell/slot, so
        // the 2-cell queue overflows and drops.
        eng.add_flows([flow(1, 0, 1, 10 * 1250, 0)]).unwrap();
        assert!(eng.run_until_drained(1_000).unwrap());
        let m = eng.metrics();
        assert!(m.dropped_cells > 0, "cap must bite");
        assert_eq!(m.delivered_cells + m.dropped_cells, m.injected_cells);
        assert!(m.loss_rate() > 0.0 && m.loss_rate() < 1.0);
        // A flow with losses never completes.
        assert!(m.flows.is_empty());
    }

    #[test]
    fn no_drops_without_cap() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([flow(1, 0, 1, 10 * 1250, 0)]).unwrap();
        assert!(eng.run_until_drained(10_000).unwrap());
        assert_eq!(eng.metrics().dropped_cells, 0);
        assert_eq!(eng.metrics().loss_rate(), 0.0);
    }

    #[test]
    fn reroute_queued_preserves_cells() {
        let sched = round_robin(4).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([flow(1, 0, 3, 5 * 1250, 0)]).unwrap();
        eng.run_slots(1).unwrap();
        let queued = eng.total_queued();
        assert!(queued > 0);
        let rerouted = eng.reroute_queued().unwrap();
        assert_eq!(rerouted, queued);
        assert_eq!(eng.total_queued(), queued);
        assert!(eng.run_until_drained(100).unwrap());
    }

    /// A 2-hop VLB-style router that actually consumes the RNG stream:
    /// fresh cells bounce through a random intermediate.
    struct RandomViaRouter;
    impl Router for RandomViaRouter {
        fn decide(
            &self,
            node: NodeId,
            cell: &mut Cell,
            rng: &mut crate::rng::NodeRng,
        ) -> RouteDecision {
            if node == cell.dst {
                return RouteDecision::Deliver;
            }
            if cell.tag == 0 {
                cell.tag = 1;
                let via = NodeId(rng.gen_range(16) as u32);
                if via != node && via != cell.dst {
                    return RouteDecision::ToNode(via);
                }
            }
            RouteDecision::ToNode(cell.dst)
        }
        fn class_admits(
            &self,
            _c: crate::router::ClassId,
            _cell: &Cell,
            _from: NodeId,
            _to: NodeId,
        ) -> bool {
            false
        }
        fn classes(&self) -> &[crate::router::ClassId] {
            &[]
        }
        fn max_hops(&self) -> u8 {
            8
        }
        fn name(&self) -> &str {
            "random-via"
        }
    }

    fn busy_run(threads: usize) -> Metrics {
        let sched = round_robin(16).unwrap();
        let router = RandomViaRouter;
        let mut cfg = SimConfig::default();
        cfg.uplinks = 8; // enough arrivals per slot to cross PAR_MIN_ARRIVALS
        cfg.seed = 11;
        cfg.engine_threads = threads;
        let mut eng = Engine::new(cfg, &sched, &router);
        let flows: Vec<Flow> = (0..200)
            .map(|i| {
                flow(
                    i,
                    (i % 16) as u32,
                    ((i * 7 + 3) % 16) as u32,
                    8 * 1250,
                    (i % 5) * 100,
                )
            })
            .collect();
        eng.add_flows(flows).unwrap();
        assert!(eng.run_until_drained(50_000).unwrap());
        eng.metrics().clone()
    }

    #[test]
    fn parallel_runs_match_serial_bit_for_bit() {
        let serial = busy_run(1);
        assert!(serial.delivered_cells > 0);
        assert_eq!(serial, busy_run(2), "2 threads must match serial");
        assert_eq!(serial, busy_run(4), "4 threads must match serial");
    }

    #[test]
    fn stranded_count_is_incremental_and_matches_brute_walk() {
        use crate::fault::FaultPlan;
        let sched = round_robin(8).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows: Vec<Flow> = (0..8u32)
            .map(|s| flow(s as u64, s, (s + 1) % 8, 6 * 1250, 0))
            .collect();
        eng.add_flows(flows).unwrap();
        let mut plan = FaultPlan::new();
        plan.node_outage(NodeId(1), 200, 2_000);
        plan.link_outage(NodeId(2), NodeId(3), 400, 1_500);
        eng.set_fault_plan(plan);
        let mut checked_degraded = 0;
        for _ in 0..40 {
            eng.step().unwrap();
            // First call may rescan; the second must hit the memo. Both
            // must agree with the brute walk at every boundary.
            let a = eng.count_stranded();
            let b = eng.count_stranded();
            assert_eq!(a, b);
            assert_eq!(a, eng.count_stranded_brute());
            if !eng.failures().is_empty() {
                checked_degraded += 1;
                assert_eq!(eng.metrics().stranded_cells, a);
            }
        }
        assert!(checked_degraded > 0, "the fault plan must have fired");
        // Manual failure-set pokes invalidate the memo via the epoch.
        eng.failures_mut().fail_node(NodeId(5));
        assert_eq!(eng.count_stranded(), eng.count_stranded_brute());
    }

    #[test]
    fn parallel_engine_handles_faults_and_schedule_swaps() {
        use crate::fault::FaultPlan;
        let run = |threads: usize| {
            let a = round_robin(16).unwrap();
            let b = round_robin(16).unwrap();
            let router = RandomViaRouter;
            let mut cfg = SimConfig::default();
            cfg.uplinks = 8;
            cfg.seed = 3;
            cfg.engine_threads = threads;
            let mut eng = Engine::new(cfg, &a, &router);
            let flows: Vec<Flow> = (0..120)
                .map(|i| flow(i, (i % 16) as u32, ((i * 5 + 2) % 16) as u32, 4 * 1250, 0))
                .collect();
            eng.add_flows(flows).unwrap();
            let mut plan = FaultPlan::new();
            plan.link_outage(NodeId(0), NodeId(1), 100, 1_200);
            plan.node_outage(NodeId(9), 300, 900);
            eng.set_fault_plan(plan);
            eng.run_slots(6).unwrap();
            eng.install_schedule(&b);
            eng.reroute_queued().unwrap();
            eng.run_until_drained(50_000).unwrap();
            eng.metrics().clone()
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
    }

    proptest::proptest! {
        /// The occupancy bitset must agree, at every slot boundary and
        /// at any thread count, with the hash-probe reference model the
        /// word-walk replaced: the set of nodes built by probing every
        /// node's queues for emptiness.
        #[test]
        fn occupancy_bitset_matches_hash_probe_reference(
            seed in 0u64..1_000,
            threads in 1usize..4,
            specs in proptest::collection::vec(
                (0u32..16, 0u32..16, 1u64..30_000, 0u64..3_000),
                1..40,
            ),
        ) {
            let sched = round_robin(16).unwrap();
            let router = RandomViaRouter;
            let mut cfg = SimConfig::default();
            cfg.uplinks = 4;
            cfg.seed = seed;
            cfg.engine_threads = threads;
            let mut eng = Engine::new(cfg, &sched, &router);
            let flows: Vec<Flow> = specs
                .iter()
                .enumerate()
                .filter(|(_, (s, d, _, _))| s != d)
                .map(|(i, &(s, d, bytes, at))| flow(i as u64, s, d, bytes, at))
                .collect();
            eng.add_flows(flows).unwrap();
            for _ in 0..200 {
                eng.step().unwrap();
                let reference: std::collections::HashSet<usize> =
                    (0..16).filter(|&v| !eng.queues[v].is_empty()).collect();
                for v in 0..16usize {
                    let bit = eng.occupancy[v / 64] >> (v % 64) & 1 == 1;
                    proptest::prop_assert_eq!(
                        bit,
                        reference.contains(&v),
                        "slot {}: node {} bitset/hash-probe disagreement",
                        eng.slot,
                        v
                    );
                }
                if eng.total_queued() == 0 && eng.inflight.is_empty() {
                    break;
                }
            }
        }
    }
}
