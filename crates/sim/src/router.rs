//! The routing contract between the engine and routing schemes.
//!
//! Oblivious and semi-oblivious schemes share a queueing structure: at
//! every node, a cell either waits for a *specific* next hop (a direct or
//! targeted circuit) or for *any* circuit in a *class* (a load-balancing
//! spray hop — "the first available intra-clique link" of §4). The engine
//! keeps one virtual output queue per specific next hop plus one queue per
//! class, and asks the router two questions:
//!
//! 1. [`Router::decide`] — when a cell arrives at a node: deliver it,
//!    queue it for a specific neighbor, or queue it into a class.
//! 2. [`Router::class_admits`] — when a circuit to `to` comes up: may a
//!    given queued class cell use it?

use crate::cell::Cell;
use crate::rng::NodeRng;
use sorn_topology::NodeId;

/// Identifier of a router-defined spray class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u8);

/// Where a cell should go next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// The cell has reached its destination.
    Deliver,
    /// Queue for a circuit to this specific node.
    ToNode(NodeId),
    /// Queue into a spray class; any circuit admitted by
    /// [`Router::class_admits`] may carry it.
    ToClass(ClassId),
    /// Shed the cell at this node — used by failure-aware routers when
    /// the destination is known dead. Counted as a drop, not a delivery.
    Drop,
}

/// A routing scheme.
///
/// Implementations must be deterministic given the RNG: the engine
/// passes the deciding node's own counter-based [`NodeRng`] stream, so a
/// decision depends only on `(seed, node, decisions made at that node)`
/// and runs reproduce exactly — serial or sharded across threads.
///
/// `Sync` is a supertrait because the engine calls `decide`,
/// `class_admits`, and `on_transmit` from worker threads when
/// `SimConfig::engine_threads > 1`. Routers with interior mutable state
/// must key it by the acting node (the engine shards work by node), so
/// a `Mutex` around per-node state stays deterministic.
pub trait Router: Sync {
    /// Decides the next step for `cell` arriving at `node`, possibly
    /// updating the cell's router-owned `tag`.
    ///
    /// Called once when the cell is injected at its source and once per
    /// intermediate hop. Must return [`RouteDecision::Deliver`] when
    /// `node == cell.dst`.
    fn decide(&self, node: NodeId, cell: &mut Cell, rng: &mut NodeRng) -> RouteDecision;

    /// Whether a cell queued in `class` at node `from` may ride a circuit
    /// to `to`.
    fn class_admits(&self, class: ClassId, cell: &Cell, from: NodeId, to: NodeId) -> bool;

    /// Hook invoked when a cell is put on a circuit `from → to`, before it
    /// propagates. Routers that need per-cell state keyed to *which*
    /// circuit a spray hop used (e.g. the dimension bitmask of an
    /// h-dimensional ORN) update `cell.tag` here. Default: no-op.
    fn on_transmit(&self, cell: &mut Cell, from: NodeId, to: NodeId) {
        let _ = (cell, from, to);
    }

    /// The classes this scheme uses, in transmission priority order
    /// (checked after the specific queue for the circuit's endpoint).
    fn classes(&self) -> &[ClassId];

    /// Upper bound on hops any cell takes; the engine treats exceeding it
    /// as a routing bug.
    fn max_hops(&self) -> u8;

    /// Human-readable scheme name for reports.
    fn name(&self) -> &str;
}

/// A trivial router for tests and single-hop networks: every cell waits
/// for the direct circuit to its destination.
#[derive(Debug, Clone, Default)]
pub struct DirectRouter;

impl Router for DirectRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut NodeRng) -> RouteDecision {
        if node == cell.dst {
            RouteDecision::Deliver
        } else {
            RouteDecision::ToNode(cell.dst)
        }
    }

    fn class_admits(&self, _class: ClassId, _cell: &Cell, _from: NodeId, _to: NodeId) -> bool {
        false
    }

    fn classes(&self) -> &[ClassId] {
        &[]
    }

    fn max_hops(&self) -> u8 {
        1
    }

    fn name(&self) -> &str {
        "direct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, FlowId};

    fn cell(src: u32, dst: u32) -> Cell {
        Cell {
            flow: FlowId(0),
            seq: 0,
            src: NodeId(src),
            dst: NodeId(dst),
            injected_ns: 0,
            hops: 0,
            tag: 0,
        }
    }

    #[test]
    fn direct_router_targets_destination() {
        let r = DirectRouter;
        let mut rng = NodeRng::for_node(0, 0);
        let mut c = cell(0, 3);
        assert_eq!(
            r.decide(NodeId(0), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(3))
        );
        assert_eq!(
            r.decide(NodeId(3), &mut c, &mut rng),
            RouteDecision::Deliver
        );
        assert!(r.classes().is_empty());
        assert_eq!(r.max_hops(), 1);
    }
}
