//! Slot-indexed calendar ring for in-flight cells.
//!
//! Every transmission in slot `s` arrives at exactly
//! `s * slot_ns + slot_ns + propagation_ns`, i.e. a fixed whole number
//! of slots later: `delay_slots = (slot_ns + propagation_ns).div_ceil(slot_ns)`.
//! A binary heap is therefore overkill — one FIFO bucket per arrival
//! slot makes push and pop O(1), and per-slot arrival order is the
//! engine's existing `(at_ns, insertion seq)` order *by construction*:
//! only one slot ever pushes into a given bucket between drains, and a
//! bucket drains in push order.
//!
//! The ring holds `delay_slots + 1` buckets: at slot `t` the engine
//! drains bucket `t % len` while pushing into `(t + delay_slots) % len`,
//! and in-flight arrival slots span `t+1 ..= t+delay_slots`, so no live
//! bucket is ever overwritten.

use std::collections::VecDeque;

/// A calendar queue whose items all mature a fixed `delay_slots` after
/// they are pushed.
#[derive(Debug, Clone)]
pub struct SlotCalendar<T> {
    buckets: Vec<VecDeque<T>>,
    /// Arrival slot of each bucket's current contents. Lets a drain
    /// that lags several ring revolutions behind still release buckets
    /// in arrival-slot order, and catches a push wrapping onto an
    /// undrained older bucket (debug builds).
    stamps: Vec<u64>,
    delay_slots: u64,
    /// Lowest arrival slot not yet fully drained.
    head_slot: u64,
    count: usize,
}

impl<T> SlotCalendar<T> {
    /// Creates a calendar for items maturing `delay_slots` after their
    /// push slot (`delay_slots >= 1`: an item never matures in the slot
    /// it was sent).
    pub fn new(delay_slots: u64) -> Self {
        assert!(delay_slots >= 1, "cells cannot arrive in their send slot");
        SlotCalendar {
            buckets: (0..=delay_slots).map(|_| VecDeque::new()).collect(),
            stamps: vec![0; delay_slots as usize + 1],
            delay_slots,
            head_slot: 0,
            count: 0,
        }
    }

    /// Items not yet popped.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Enqueues an item sent in `now_slot`, maturing at
    /// `now_slot + delay_slots`.
    pub fn push(&mut self, now_slot: u64, item: T) {
        let arrival = now_slot + self.delay_slots;
        let idx = (arrival % self.buckets.len() as u64) as usize;
        debug_assert!(
            arrival >= self.head_slot,
            "push into an already drained slot"
        );
        debug_assert!(
            self.buckets[idx].is_empty() || self.stamps[idx] == arrival,
            "push at slot {now_slot} would wrap onto an undrained bucket"
        );
        self.stamps[idx] = arrival;
        self.buckets[idx].push_back(item);
        self.count += 1;
    }

    /// Decomposes the calendar for checkpointing:
    /// `(delay_slots, head_slot, stamps, buckets)`. The item count is
    /// implied by the bucket contents.
    pub(crate) fn parts(&self) -> (u64, u64, &[u64], &[VecDeque<T>]) {
        (
            self.delay_slots,
            self.head_slot,
            &self.stamps,
            &self.buckets,
        )
    }

    /// Rebuilds a calendar from checkpointed parts. Returns `None` when
    /// the parts are structurally inconsistent (wrong bucket count or a
    /// zero delay) — a corrupt or hand-forged snapshot, never a panic.
    pub(crate) fn from_parts(
        delay_slots: u64,
        head_slot: u64,
        stamps: Vec<u64>,
        buckets: Vec<VecDeque<T>>,
    ) -> Option<Self> {
        if delay_slots == 0
            || buckets.len() as u64 != delay_slots + 1
            || stamps.len() != buckets.len()
        {
            return None;
        }
        let count = buckets.iter().map(|b| b.len()).sum();
        Some(SlotCalendar {
            buckets,
            stamps,
            delay_slots,
            head_slot,
            count,
        })
    }

    /// Earliest arrival slot of any in-flight item, or `None` when the
    /// calendar is empty. Lets the engine fast-forward over quiescent
    /// gaps: every slot strictly before the returned one is guaranteed
    /// to drain nothing.
    pub fn next_due_slot(&self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        self.buckets
            .iter()
            .zip(&self.stamps)
            .filter(|(b, _)| !b.is_empty())
            .map(|(_, &stamp)| stamp)
            .min()
    }

    /// Pops the next item whose arrival slot is `<= now_slot`, oldest
    /// arrival slot first, FIFO within a slot. Advances past empty
    /// buckets, so slots skipped by the caller are still drained in
    /// order (the drain-past-deadline path).
    pub fn pop_due(&mut self, now_slot: u64) -> Option<T> {
        if self.count == 0 {
            // Fast-forward over idle periods without touching buckets.
            self.head_slot = self.head_slot.max(now_slot + 1);
            return None;
        }
        while self.head_slot <= now_slot {
            let idx = (self.head_slot % self.buckets.len() as u64) as usize;
            // A stamp mismatch means this bucket's contents mature a
            // whole ring revolution later — skip, don't release early.
            if self.stamps[idx] == self.head_slot {
                if let Some(item) = self.buckets[idx].pop_front() {
                    self.count -= 1;
                    return Some(item);
                }
            }
            self.head_slot += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Reference model: the engine's previous `BinaryHeap` ordered by
    /// `(arrival slot, insertion seq)`.
    #[derive(Default)]
    struct HeapModel {
        heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
        seq: u64,
    }

    impl HeapModel {
        fn push(&mut self, now_slot: u64, delay: u64, payload: u32) {
            self.heap
                .push(Reverse((now_slot + delay, self.seq, payload)));
            self.seq += 1;
        }
        fn pop_due(&mut self, now_slot: u64) -> Option<u32> {
            match self.heap.peek() {
                Some(&Reverse((at, _, _))) if at <= now_slot => {
                    self.heap.pop().map(|Reverse((_, _, p))| p)
                }
                _ => None,
            }
        }
    }

    /// Deterministic xorshift so the randomized comparison runs
    /// identically everywhere (no external RNG).
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn matches_reference_heap_on_randomized_schedules() {
        // Sweep several delays and seeds; each trial interleaves
        // randomized pushes with full per-slot drains, exactly like the
        // engine's step loop.
        for delay in [1u64, 3, 6, 17] {
            for seed in 1..=5u64 {
                let mut rng = XorShift(seed * 0x9E37_79B9 + delay);
                let mut cal = SlotCalendar::new(delay);
                let mut model = HeapModel::default();
                let mut payload = 0u32;
                for slot in 0..400u64 {
                    // The earliest in-flight arrival slot must match the
                    // heap's peek exactly, every slot.
                    let want_due = model.heap.peek().map(|&Reverse((at, _, _))| at);
                    assert_eq!(
                        cal.next_due_slot(),
                        want_due,
                        "delay {delay} seed {seed} slot {slot}"
                    );
                    // Drain everything due this slot, comparing order.
                    loop {
                        let want = model.pop_due(slot);
                        let got = cal.pop_due(slot);
                        assert_eq!(got, want, "delay {delay} seed {seed} slot {slot}");
                        if got.is_none() {
                            break;
                        }
                    }
                    // Push 0..4 items "transmitted" this slot.
                    for _ in 0..rng.next() % 4 {
                        cal.push(slot, payload);
                        model.push(slot, delay, payload);
                        payload += 1;
                    }
                    assert_eq!(cal.len(), model.heap.len());
                }
            }
        }
    }

    #[test]
    fn drains_past_skipped_slots_in_order() {
        // Items pushed across several slots, then no drains until well
        // past every deadline: pop_due must return them in arrival-slot
        // order, FIFO within a slot.
        let mut cal = SlotCalendar::new(3);
        cal.push(0, 10); // matures at 3
        cal.push(0, 11); // matures at 3
        cal.push(1, 20); // matures at 4
        cal.push(2, 30); // matures at 5
        let mut out = Vec::new();
        while let Some(x) = cal.pop_due(100) {
            out.push(x);
        }
        assert_eq!(out, vec![10, 11, 20, 30]);
        assert!(cal.is_empty());
    }

    #[test]
    fn nothing_matures_early() {
        let mut cal = SlotCalendar::new(6);
        cal.push(0, 1);
        for slot in 0..6 {
            assert_eq!(cal.pop_due(slot), None, "slot {slot}");
        }
        assert_eq!(cal.pop_due(6), Some(1));
        assert!(cal.is_empty());
    }

    #[test]
    fn idle_gap_then_reuse_keeps_ring_consistent() {
        // After a long idle gap the head fast-forwards; pushes resume
        // at the current slot and drain correctly (mid-run schedule
        // swaps idle the calendar exactly like this).
        let mut cal = SlotCalendar::new(2);
        cal.push(0, 1);
        assert_eq!(cal.pop_due(2), Some(1));
        assert_eq!(cal.pop_due(5_000), None);
        cal.push(5_000, 2);
        assert_eq!(cal.pop_due(5_001), None);
        assert_eq!(cal.pop_due(5_002), Some(2));
        assert!(cal.is_empty());
    }

    #[test]
    fn next_due_slot_tracks_earliest_arrival() {
        let mut cal = SlotCalendar::new(3);
        assert_eq!(cal.next_due_slot(), None);
        cal.push(5, 1); // matures at 8
        cal.push(7, 2); // matures at 10
        assert_eq!(cal.next_due_slot(), Some(8));
        assert_eq!(cal.pop_due(8), Some(1));
        assert_eq!(cal.next_due_slot(), Some(10));
        assert_eq!(cal.pop_due(10), Some(2));
        assert_eq!(cal.next_due_slot(), None);
    }

    #[test]
    #[should_panic(expected = "cells cannot arrive in their send slot")]
    fn zero_delay_is_rejected() {
        let _ = SlotCalendar::<u32>::new(0);
    }
}
