//! Fluid bulk-flow tier: flow-level rate integration for stable epochs.
//!
//! Cell-level simulation walks every node every slot, which is the right
//! fidelity for congestion transients but absurd for the long stretches
//! of a diurnal trace where a handful of bulk transfers drain at steady
//! rates. This module models those stretches as *macroflows*: each flow
//! is a fluid with a remaining byte count, advanced in closed form
//! between rate-changing events (arrivals, completions) at rates given
//! by a [`RateOracle`] — in practice the flow-level evaluator in
//! `sorn-routing` (`evaluate`), so the fluid tier sustains exactly the
//! worst-case throughput the paper's Figure 2(f) machinery predicts for
//! the active demand.
//!
//! The tier is only valid while the fabric is *stable*: no failures and
//! no schedule changes. [`FluidTier::advance`] therefore refuses to
//! integrate across a [`FaultPlan`] event and hands control back with
//! [`FluidStop::FaultBoundary`]; the caller then [`FluidTier::demote`]s
//! the remaining work into ordinary cell-level [`Flow`]s and feeds them
//! to an [`Engine`](crate::Engine). [`run_hybrid`] packages that whole
//! dance: fluid until the first fault (or an external boundary such as a
//! planned reconfiguration), then demote into a fast-forwarding cell
//! engine that jumps the already-covered quiet prefix and simulates the
//! faulty era at full fidelity.
//!
//! ## Fidelity contract
//!
//! The fluid tier is an approximation, cross-validated against the cell
//! engine in `tests/macroflow_validation.rs` (root crate):
//!
//! - Source fair share: a node's active flows split its line rate
//!   equally; the oracle's throughput scalar then scales *all* flows
//!   uniformly (the evaluator's "largest uniform demand scaling"), not
//!   per-flow max-min. Under skewed demand this under-serves
//!   uncontended flows.
//! - No propagation delay, no slot quantization, no queueing: each
//!   completion is exact fluid drain time, rounded up to whole
//!   nanoseconds. Cell-level completions land later by queueing +
//!   propagation, which is O(hops · propagation_ns + cells/uplink
//!   scheduling slack) — a constant per flow, so relative makespan
//!   error shrinks as flows grow. The validation suite pins ≤ 5 %
//!   makespan error for direct single-circuit traffic and ≤ 15 % for
//!   sprayed VLB traffic on the golden scenarios.

use crate::cell::{Flow, FlowId};
use crate::config::{Nanos, SimConfig};
use crate::engine::{Engine, SimError};
use crate::fault::FaultPlan;
use crate::metrics::{FlowRecord, Metrics};
use crate::router::Router;
use sorn_topology::CircuitSchedule;

/// Gives the sustainable throughput of a normalized demand matrix.
///
/// `demand` is a dense row-major `n × n` matrix; entry `(s, d)` is the
/// fraction of source `s`'s line rate currently demanded toward `d`
/// (diagonal zero, rows sum to at most 1). The oracle returns the
/// largest uniform scaling `theta` of that matrix the fabric sustains —
/// the same quantity as `ThroughputReport::throughput` in
/// `sorn-routing::flowlevel`, which is the intended implementation
/// (`FlowLevelOracle` there adapts `evaluate` to this trait). Values
/// above 1 mean headroom; the fluid tier clamps to 1 because sources
/// cannot exceed their line rate.
///
/// The trait lives here rather than in `sorn-routing` because the
/// dependency points the other way: routing implements oracles, the sim
/// consumes them.
pub trait RateOracle {
    /// Sustainable uniform scaling of `demand` (see trait docs).
    fn throughput(&mut self, n: usize, demand: &[f64]) -> f64;
}

/// An ideal non-blocking fabric: sustains any admissible demand.
///
/// Useful for unit tests and as an upper-bound reference; real runs
/// want the flow-level oracle from `sorn-routing`.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealOracle;

impl RateOracle for IdealOracle {
    fn throughput(&mut self, _n: usize, _demand: &[f64]) -> f64 {
        1.0
    }
}

/// A bulk flow advanced as a fluid.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroFlow {
    /// Flow id, carried through demotion and completion records.
    pub id: FlowId,
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Original transfer size in bytes.
    pub size_bytes: u64,
    /// Bytes not yet drained (fractional mid-epoch).
    pub remaining_bytes: f64,
    /// Arrival time at the source NIC.
    pub arrival_ns: Nanos,
}

/// Why [`FluidTier::advance`] stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum FluidStop {
    /// Every flow (active and pending) completed before the target.
    Drained,
    /// Integrated cleanly up to the requested time.
    ReachedTarget,
    /// A fault-plan event at this time ends the stable epoch; the
    /// caller must [`FluidTier::demote`] before simulating further.
    FaultBoundary(Nanos),
    /// The oracle reported zero sustainable throughput (for example, a
    /// demand over edges the schedule never provides). No progress is
    /// possible at fluid fidelity; demote to cell level.
    Stalled,
}

/// Aggregate outcomes of a fluid run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FluidStats {
    /// Bytes drained at fluid fidelity.
    pub delivered_bytes: f64,
    /// Completion records (`max_hops` is 0: hops are not modeled).
    pub completed: Vec<FlowRecord>,
    /// Rate re-solves performed (one oracle call each).
    pub resolves: u64,
}

/// Completion-time slack, in bytes, absorbing float error when a flow's
/// remaining count lands within a whisker of zero.
const EPS_BYTES: f64 = 1e-6;

/// The fluid tier: macroflows advanced in closed form between events.
#[derive(Debug)]
pub struct FluidTier<O> {
    n: usize,
    oracle: O,
    /// Node line rate in bytes per nanosecond (all uplinks).
    line_rate: f64,
    now: f64,
    active: Vec<MacroFlow>,
    /// Future arrivals, sorted by descending `arrival_ns` (pop back).
    pending: Vec<Flow>,
    stats: FluidStats,
}

impl<O: RateOracle> FluidTier<O> {
    /// Creates an empty tier over `n` nodes with `cfg`'s line rate.
    pub fn new(n: usize, cfg: &SimConfig, oracle: O) -> Self {
        assert!(n >= 2, "fluid tier needs at least two nodes");
        FluidTier {
            n,
            oracle,
            line_rate: cfg.uplinks as f64 * cfg.cell_bytes as f64 / cfg.slot_ns as f64,
            now: 0.0,
            active: Vec::new(),
            pending: Vec::new(),
            stats: FluidStats::default(),
        }
    }

    /// Adds bulk flows (future arrivals allowed; `src != dst` required).
    pub fn add_flows(&mut self, flows: impl IntoIterator<Item = Flow>) {
        for f in flows {
            assert!(
                f.src != f.dst,
                "macroflow {:?} has src == dst == {:?}",
                f.id,
                f.src
            );
            assert!(
                f.src.index() < self.n && f.dst.index() < self.n,
                "macroflow {:?} endpoints out of range for n = {}",
                f.id,
                self.n
            );
            self.pending.push(f);
        }
        self.pending
            .sort_by(|a, b| b.arrival_ns.cmp(&a.arrival_ns).then(b.id.0.cmp(&a.id.0)));
    }

    /// Current fluid clock, rounded up to whole nanoseconds.
    pub fn now_ns(&self) -> Nanos {
        self.now.ceil() as Nanos
    }

    /// True when no active or pending flow remains.
    pub fn is_drained(&self) -> bool {
        self.active.is_empty() && self.pending.is_empty()
    }

    /// Flows currently draining.
    pub fn active(&self) -> &[MacroFlow] {
        &self.active
    }

    /// Outcomes so far.
    pub fn stats(&self) -> &FluidStats {
        &self.stats
    }

    /// Integrates up to `until` (ns) but never across a fault-plan
    /// event: the first event strictly after the current clock bounds
    /// the epoch, and reaching it returns
    /// [`FluidStop::FaultBoundary`] with the clock parked there.
    pub fn advance(&mut self, until: Nanos, plan: &FaultPlan) -> FluidStop {
        let boundary = plan
            .events()
            .iter()
            .map(|e| e.at_ns)
            .find(|&t| (t as f64) > self.now);
        let target = boundary.map_or(until, |b| b.min(until));
        let stop = self.integrate_to(target as f64);
        match stop {
            FluidStop::ReachedTarget if boundary == Some(target) => {
                FluidStop::FaultBoundary(target)
            }
            other => other,
        }
    }

    /// Event-driven integration: between consecutive events (arrival,
    /// completion, target) rates are constant, so each span is one
    /// closed-form update. Runs in O(events × resolve cost).
    fn integrate_to(&mut self, target: f64) -> FluidStop {
        loop {
            self.admit_arrivals();
            if self.active.is_empty() {
                // Jump straight to the next arrival, or the target.
                match self.pending.last() {
                    None => {
                        self.now = self.now.max(target);
                        return FluidStop::Drained;
                    }
                    Some(f) if (f.arrival_ns as f64) <= target => {
                        self.now = f.arrival_ns as f64;
                        continue;
                    }
                    Some(_) => {
                        self.now = target;
                        return FluidStop::ReachedTarget;
                    }
                }
            }
            if self.now >= target {
                return FluidStop::ReachedTarget;
            }

            let rates = self.solve_rates();
            let min_rate = rates.iter().fold(f64::INFINITY, |a, &r| a.min(r));
            if min_rate <= 0.0 {
                return FluidStop::Stalled;
            }

            // Next event: target, next arrival, or earliest completion.
            let mut dt = target - self.now;
            if let Some(f) = self.pending.last() {
                dt = dt.min(f.arrival_ns as f64 - self.now);
            }
            for (f, &r) in self.active.iter().zip(&rates) {
                dt = dt.min(f.remaining_bytes / r);
            }

            self.now += dt;
            let mut i = 0;
            for (j, &r) in rates.iter().enumerate() {
                let f = &mut self.active[j];
                let drained = (r * dt).min(f.remaining_bytes);
                f.remaining_bytes -= drained;
                self.stats.delivered_bytes += drained;
                if f.remaining_bytes <= EPS_BYTES {
                    self.stats.completed.push(FlowRecord {
                        id: f.id,
                        size_bytes: f.size_bytes,
                        arrival_ns: f.arrival_ns,
                        completion_ns: self.now.ceil() as Nanos,
                        max_hops: 0,
                    });
                } else {
                    self.active.swap(i, j);
                    i += 1;
                }
            }
            self.active.truncate(i);
        }
    }

    /// Moves pending flows whose arrival time has come into the active
    /// set.
    fn admit_arrivals(&mut self) {
        while let Some(f) = self.pending.last() {
            if (f.arrival_ns as f64) > self.now {
                break;
            }
            let f = self.pending.pop().unwrap();
            self.active.push(MacroFlow {
                id: f.id,
                src: f.src.0,
                dst: f.dst.0,
                size_bytes: f.size_bytes,
                remaining_bytes: f.size_bytes as f64,
                arrival_ns: f.arrival_ns,
            });
        }
    }

    /// Per-flow rates (bytes/ns): equal split of each source's line
    /// rate, scaled by the oracle's uniform throughput (clamped to 1).
    fn solve_rates(&mut self) -> Vec<f64> {
        let mut per_src = vec![0u32; self.n];
        for f in &self.active {
            per_src[f.src as usize] += 1;
        }
        let mut demand = vec![0.0; self.n * self.n];
        for f in &self.active {
            demand[f.src as usize * self.n + f.dst as usize] +=
                1.0 / per_src[f.src as usize] as f64;
        }
        let theta = self.oracle.throughput(self.n, &demand).min(1.0);
        self.stats.resolves += 1;
        self.active
            .iter()
            .map(|f| theta * self.line_rate / per_src[f.src as usize] as f64)
            .collect()
    }

    /// Converts all remaining work back into cell-level [`Flow`]s and
    /// empties the tier: partially-drained flows restart *now* with
    /// their remaining bytes (rounded up to a whole byte, so no work is
    /// lost), never-started flows keep their original arrival times.
    /// Feed the result to [`Engine::add_flows`](crate::Engine::add_flows).
    pub fn demote(&mut self) -> Vec<Flow> {
        let now = self.now_ns();
        let mut out: Vec<Flow> = self
            .active
            .drain(..)
            .map(|f| Flow {
                id: f.id,
                src: sorn_topology::NodeId(f.src),
                dst: sorn_topology::NodeId(f.dst),
                size_bytes: (f.remaining_bytes.ceil() as u64).max(1),
                arrival_ns: now,
            })
            .collect();
        out.extend(self.pending.drain(..).rev());
        out
    }
}

/// Result of a [`run_hybrid`] execution.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridReport {
    /// Simulated time covered at fluid fidelity.
    pub fluid_ns: Nanos,
    /// Flows fully drained by the fluid tier.
    pub fluid_completed: Vec<FlowRecord>,
    /// Bytes drained at fluid fidelity.
    pub fluid_delivered_bytes: u64,
    /// Oracle re-solves performed.
    pub resolves: u64,
    /// When (and whether) the run demoted to cell level.
    pub demoted_at_ns: Option<Nanos>,
    /// Flows handed to the cell engine at demotion.
    pub demoted_flows: usize,
    /// Cell-level metrics for the demoted era (`None` if never demoted).
    pub cell_metrics: Option<Metrics>,
    /// Whether all traffic drained within the slot budget.
    pub drained: bool,
    /// Last completion time across both tiers.
    pub makespan_ns: Nanos,
}

/// Runs `flows` to completion: fluid while the fabric is stable, then
/// demoted into a fast-forwarding cell [`Engine`] for the faulty era.
///
/// The stable epoch ends at the earliest of the first [`FaultPlan`]
/// event and `stable_until_ns` (an external boundary such as a planned
/// reconfiguration — pass `None` when there is none). The cell engine
/// starts at slot 0 on the *absolute* clock with fast-forward enabled,
/// so the already-covered quiet prefix is jumped in a handful of
/// batched skips rather than re-simulated, and the fault plan applies
/// at its original times.
#[allow(clippy::too_many_arguments)]
pub fn run_hybrid(
    cfg: SimConfig,
    schedule: &CircuitSchedule,
    router: &dyn Router,
    oracle: impl RateOracle,
    flows: Vec<Flow>,
    plan: FaultPlan,
    stable_until_ns: Option<Nanos>,
    max_slots: u64,
) -> Result<HybridReport, SimError> {
    let horizon = cfg.slot_start(max_slots);
    let mut fluid = FluidTier::new(schedule.n(), &cfg, oracle);
    fluid.add_flows(flows);
    let stop = fluid.advance(stable_until_ns.unwrap_or(horizon).min(horizon), &plan);

    let fluid_makespan = fluid
        .stats()
        .completed
        .iter()
        .map(|r| r.completion_ns)
        .max()
        .unwrap_or(0);
    let mut report = HybridReport {
        fluid_ns: fluid.now_ns(),
        fluid_completed: fluid.stats().completed.clone(),
        fluid_delivered_bytes: fluid.stats().delivered_bytes.round() as u64,
        resolves: fluid.stats().resolves,
        demoted_at_ns: None,
        demoted_flows: 0,
        cell_metrics: None,
        drained: matches!(stop, FluidStop::Drained),
        makespan_ns: fluid_makespan,
    };
    if matches!(stop, FluidStop::Drained) {
        return Ok(report);
    }

    let demoted = fluid.demote();
    report.demoted_at_ns = Some(fluid.now_ns());
    report.demoted_flows = demoted.len();

    let mut eng = Engine::new(cfg, schedule, router);
    eng.set_fast_forward(true);
    eng.add_flows(demoted)?;
    eng.set_fault_plan(plan);
    report.drained = eng.run_until_drained(max_slots)?;
    let metrics = eng.metrics().clone();
    eng.finish();
    report.makespan_ns = fluid_makespan.max(cfg.slot_start(metrics.slots));
    report.cell_metrics = Some(metrics);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::DirectRouter;
    use sorn_topology::builders::round_robin;
    use sorn_topology::NodeId;

    fn flow(id: u64, src: u32, dst: u32, bytes: u64, at: Nanos) -> Flow {
        Flow {
            id: FlowId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: bytes,
            arrival_ns: at,
        }
    }

    fn cfg() -> SimConfig {
        // line rate: 1 × 1250 B / 100 ns = 12.5 B/ns.
        SimConfig::default()
    }

    #[test]
    fn single_flow_drains_at_line_rate_under_ideal_oracle() {
        let mut tier = FluidTier::new(4, &cfg(), IdealOracle);
        tier.add_flows([flow(0, 0, 1, 125_000, 1_000)]);
        assert_eq!(
            tier.advance(1_000_000, &FaultPlan::new()),
            FluidStop::Drained
        );
        // 125 kB at 12.5 B/ns = 10 000 ns after the 1 000 ns arrival.
        assert_eq!(tier.stats().completed.len(), 1);
        assert_eq!(tier.stats().completed[0].completion_ns, 11_000);
        assert!(tier.is_drained());
    }

    #[test]
    fn same_source_flows_share_the_line_rate() {
        let mut tier = FluidTier::new(4, &cfg(), IdealOracle);
        // Two equal flows from node 0: each gets half rate until the
        // first completes, then the survivor takes the full rate. With
        // equal sizes both finish together at 2× the solo drain time.
        tier.add_flows([flow(0, 0, 1, 125_000, 0), flow(1, 0, 2, 125_000, 0)]);
        assert_eq!(
            tier.advance(1_000_000, &FaultPlan::new()),
            FluidStop::Drained
        );
        for r in &tier.stats().completed {
            assert_eq!(r.completion_ns, 20_000);
        }
    }

    #[test]
    fn late_arrival_resolves_rates_mid_flight() {
        let mut tier = FluidTier::new(4, &cfg(), IdealOracle);
        // Flow 0 runs alone for 4 000 ns (50 kB drained), then shares
        // with flow 1: the remaining 75 kB drain at half rate (12 000
        // ns). Flow 1 (125 kB at half rate = 20 000 ns) outlives it and
        // finishes at full rate.
        tier.add_flows([flow(0, 0, 1, 125_000, 0), flow(1, 0, 2, 125_000, 4_000)]);
        assert_eq!(
            tier.advance(1_000_000, &FaultPlan::new()),
            FluidStop::Drained
        );
        let done = &tier.stats().completed;
        assert_eq!(done[0].id, FlowId(0));
        assert_eq!(done[0].completion_ns, 16_000);
        // Flow 1: 75 kB drained by 16 000 ns, 50 kB left at full rate.
        assert_eq!(done[1].id, FlowId(1));
        assert_eq!(done[1].completion_ns, 20_000);
    }

    #[test]
    fn oracle_throughput_scales_everyone_uniformly() {
        struct Half;
        impl RateOracle for Half {
            fn throughput(&mut self, _n: usize, _d: &[f64]) -> f64 {
                0.5
            }
        }
        let mut tier = FluidTier::new(4, &cfg(), Half);
        tier.add_flows([flow(0, 0, 1, 125_000, 0)]);
        tier.advance(1_000_000, &FaultPlan::new());
        assert_eq!(tier.stats().completed[0].completion_ns, 20_000);
    }

    #[test]
    fn fault_event_parks_the_clock_and_demotion_preserves_bytes() {
        let mut plan = FaultPlan::new();
        plan.link_outage(NodeId(0), NodeId(1), 5_000, 9_000);
        let mut tier = FluidTier::new(4, &cfg(), IdealOracle);
        tier.add_flows([flow(0, 0, 1, 125_000, 0), flow(1, 2, 3, 50_000, 800_000)]);
        assert_eq!(
            tier.advance(1_000_000, &plan),
            FluidStop::FaultBoundary(5_000)
        );
        assert_eq!(tier.now_ns(), 5_000);
        // 5 000 ns at 12.5 B/ns = 62 500 bytes drained.
        let demoted = tier.demote();
        assert_eq!(demoted.len(), 2);
        assert_eq!(demoted[0].size_bytes, 62_500);
        assert_eq!(demoted[0].arrival_ns, 5_000);
        // The never-started flow keeps its original arrival.
        assert_eq!(demoted[1].size_bytes, 50_000);
        assert_eq!(demoted[1].arrival_ns, 800_000);
        assert!(tier.is_drained());
    }

    #[test]
    fn zero_throughput_stalls_instead_of_spinning() {
        struct Dead;
        impl RateOracle for Dead {
            fn throughput(&mut self, _n: usize, _d: &[f64]) -> f64 {
                0.0
            }
        }
        let mut tier = FluidTier::new(4, &cfg(), Dead);
        tier.add_flows([flow(0, 0, 1, 1_000, 0)]);
        assert_eq!(tier.advance(1_000, &FaultPlan::new()), FluidStop::Stalled);
    }

    #[test]
    fn hybrid_run_demotes_across_a_fault_and_drains() {
        let schedule = round_robin(4).unwrap();
        let mut plan = FaultPlan::new();
        plan.link_outage(NodeId(0), NodeId(2), 50_000, 52_000);
        let flows = vec![flow(0, 0, 1, 1_250_000, 0), flow(1, 2, 3, 1_250_000, 0)];
        let report = run_hybrid(
            cfg(),
            &schedule,
            &DirectRouter,
            IdealOracle,
            flows,
            plan,
            None,
            10_000_000,
        )
        .unwrap();
        assert!(report.drained);
        assert_eq!(report.demoted_at_ns, Some(50_000));
        assert_eq!(report.demoted_flows, 2);
        let m = report.cell_metrics.as_ref().unwrap();
        // All bytes land exactly once across the two tiers.
        assert_eq!(report.fluid_delivered_bytes + m.delivered_bytes, 2_500_000);
        assert!(report.makespan_ns > 50_000);
        // The demoted era fast-forwarded the [0, 50 µs) quiet prefix.
        assert!(m.slots_skipped > 0);
    }

    #[test]
    fn hybrid_run_without_faults_stays_fluid() {
        let schedule = round_robin(4).unwrap();
        let flows = vec![flow(0, 0, 1, 125_000, 0)];
        let report = run_hybrid(
            cfg(),
            &schedule,
            &DirectRouter,
            IdealOracle,
            flows,
            FaultPlan::new(),
            None,
            1_000_000,
        )
        .unwrap();
        assert!(report.drained);
        assert!(report.cell_metrics.is_none());
        assert_eq!(report.fluid_completed.len(), 1);
        assert_eq!(report.makespan_ns, 10_000);
    }
}
