//! Timed fault injection: scripted fail/restore events and shared health.
//!
//! A [`FaultPlan`] is an ordered script of [`FaultEvent`]s the engine
//! applies at slot boundaries (see `Engine::set_fault_plan`), turning the
//! static [`FailureSet`](crate::FailureSet) poke-and-look interface into a
//! dynamic failure timeline. Plans are built either explicitly
//! (deterministic outage windows) or stochastically with
//! [`FaultPlan::storm`], which samples exponential time-between-failures
//! and time-to-repair per element from a seed — the MTBF/MTTR model used
//! by the resilience experiments.
//!
//! [`LinkHealth`] is the routing-facing side of the same state: a shared,
//! cheaply clonable snapshot of the current [`FailureSet`] that
//! failure-aware routers consult to detour cells around dead circuits.
//! The engine republishes it whenever a fault event fires.

use crate::config::Nanos;
use crate::failure::FailureSet;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sorn_topology::NodeId;
use std::sync::{Arc, RwLock};

/// The element a fault event acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A whole node (all its circuits).
    Node(NodeId),
    /// One directed link `src → dst`.
    Link(NodeId, NodeId),
    /// Both directions of a link.
    LinkBidir(NodeId, NodeId),
}

/// Whether the event fails or restores its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The element goes down.
    Fail,
    /// The element comes back.
    Restore,
}

/// One timed fail/restore event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated time at which the event takes effect (applied at the
    /// first slot boundary with `slot_start >= at_ns`).
    pub at_ns: Nanos,
    /// Fail or restore.
    pub action: FaultAction,
    /// The element acted on.
    pub target: FaultTarget,
}

impl FaultEvent {
    /// Applies this event to a failure set.
    pub fn apply(&self, failures: &mut FailureSet) {
        match (self.action, self.target) {
            (FaultAction::Fail, FaultTarget::Node(v)) => failures.fail_node(v),
            (FaultAction::Fail, FaultTarget::Link(a, b)) => failures.fail_link(a, b),
            (FaultAction::Fail, FaultTarget::LinkBidir(a, b)) => failures.fail_link_bidir(a, b),
            (FaultAction::Restore, FaultTarget::Node(v)) => failures.restore_node(v),
            (FaultAction::Restore, FaultTarget::Link(a, b)) => failures.restore_link(a, b),
            (FaultAction::Restore, FaultTarget::LinkBidir(a, b)) => {
                failures.restore_link(a, b);
                failures.restore_link(b, a);
            }
        }
    }
}

/// Parameters for a seeded stochastic failure storm.
///
/// Each listed element independently alternates between up and down:
/// up-times are exponential with mean `mtbf_ns`, down-times exponential
/// with mean `mttr_ns`. New failures start only before `horizon_ns`;
/// every failure gets a matching restore event (possibly past the
/// horizon), so a run that continues long enough always ends healthy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStorm {
    /// RNG seed; the generated plan is a pure function of this config.
    pub seed: u64,
    /// No new failures start at or after this time.
    pub horizon_ns: Nanos,
    /// Mean time between failures per element, in nanoseconds.
    pub mtbf_ns: f64,
    /// Mean time to repair per element, in nanoseconds.
    pub mttr_ns: f64,
    /// Links subjected to the storm (failed bidirectionally).
    pub links: Vec<(NodeId, NodeId)>,
    /// Nodes subjected to the storm.
    pub nodes: Vec<NodeId>,
}

/// An ordered script of timed fail/restore events.
///
/// Events are kept sorted by time (stable: ties preserve insertion
/// order), so the engine can apply them with a single cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an event, keeping the script time-sorted (stable on ties).
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        let pos = self.events.partition_point(|e| e.at_ns <= event.at_ns);
        self.events.insert(pos, event);
        self
    }

    /// Schedules a node failure at `at_ns`.
    pub fn fail_node_at(&mut self, at_ns: Nanos, node: NodeId) -> &mut Self {
        self.push(FaultEvent {
            at_ns,
            action: FaultAction::Fail,
            target: FaultTarget::Node(node),
        })
    }

    /// Schedules a node restoration at `at_ns`.
    pub fn restore_node_at(&mut self, at_ns: Nanos, node: NodeId) -> &mut Self {
        self.push(FaultEvent {
            at_ns,
            action: FaultAction::Restore,
            target: FaultTarget::Node(node),
        })
    }

    /// Schedules a directed-link failure at `at_ns`.
    pub fn fail_link_at(&mut self, at_ns: Nanos, src: NodeId, dst: NodeId) -> &mut Self {
        self.push(FaultEvent {
            at_ns,
            action: FaultAction::Fail,
            target: FaultTarget::Link(src, dst),
        })
    }

    /// Schedules a directed-link restoration at `at_ns`.
    pub fn restore_link_at(&mut self, at_ns: Nanos, src: NodeId, dst: NodeId) -> &mut Self {
        self.push(FaultEvent {
            at_ns,
            action: FaultAction::Restore,
            target: FaultTarget::Link(src, dst),
        })
    }

    /// Schedules a directed-link outage over `[from_ns, until_ns)`.
    pub fn link_outage(
        &mut self,
        src: NodeId,
        dst: NodeId,
        from_ns: Nanos,
        until_ns: Nanos,
    ) -> &mut Self {
        self.fail_link_at(from_ns, src, dst)
            .restore_link_at(until_ns, src, dst)
    }

    /// Schedules a node outage over `[from_ns, until_ns)`.
    pub fn node_outage(&mut self, node: NodeId, from_ns: Nanos, until_ns: Nanos) -> &mut Self {
        self.fail_node_at(from_ns, node)
            .restore_node_at(until_ns, node)
    }

    /// The scripted events, time-sorted.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a seeded stochastic failure storm.
    ///
    /// Deterministic: the same [`FaultStorm`] always produces the same
    /// plan. Elements are sampled in listing order from a single RNG
    /// stream derived from `seed`.
    pub fn storm(cfg: &FaultStorm) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let targets: Vec<FaultTarget> = cfg
            .links
            .iter()
            .map(|&(a, b)| FaultTarget::LinkBidir(a, b))
            .chain(cfg.nodes.iter().map(|&v| FaultTarget::Node(v)))
            .collect();
        for target in targets {
            let mut t = 0.0f64;
            loop {
                t += exp_sample(&mut rng, cfg.mtbf_ns);
                if t >= cfg.horizon_ns as f64 {
                    break;
                }
                let down_at = t as Nanos;
                t += exp_sample(&mut rng, cfg.mttr_ns);
                let up_at = t as Nanos;
                plan.push(FaultEvent {
                    at_ns: down_at,
                    action: FaultAction::Fail,
                    target,
                });
                plan.push(FaultEvent {
                    at_ns: up_at.max(down_at + 1),
                    action: FaultAction::Restore,
                    target,
                });
            }
        }
        plan
    }
}

/// Draws an exponential sample with the given mean, using only
/// `next_u64` so the storm generator works with any `RngCore`.
fn exp_sample(rng: &mut StdRng, mean_ns: f64) -> f64 {
    // 53 uniform bits in [0, 1).
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    -mean_ns * (1.0 - u).ln()
}

/// A read-only view of a just-applied fault event, handed to
/// [`Probe::on_fault`](crate::Probe::on_fault).
#[derive(Debug, Clone, Copy)]
pub struct FaultView<'a> {
    /// The event that fired.
    pub event: &'a FaultEvent,
    /// The slot at whose boundary the event was applied.
    pub slot: u64,
    /// Simulated time of that boundary.
    pub now_ns: Nanos,
    /// Failed-node count after the event.
    pub failed_nodes: usize,
    /// Failed directed-link count after the event.
    pub failed_links: usize,
}

/// A shared, cheaply clonable view of the current failure state.
///
/// The engine publishes into it (see `Engine::set_health_mirror`); the
/// fault-aware routers in `sorn-routing` read it to steer cells away
/// from dead circuits. This models the paper's §6 observation that
/// recovery needs only local health knowledge: routers see *which*
/// elements are down, not why.
#[derive(Debug, Clone, Default)]
pub struct LinkHealth {
    inner: Arc<RwLock<FailureSet>>,
}

impl LinkHealth {
    /// A fully healthy view.
    pub fn new() -> Self {
        LinkHealth::default()
    }

    /// Replaces the published failure state.
    pub fn publish(&self, failures: &FailureSet) {
        *self.inner.write().expect("health lock") = failures.clone();
    }

    /// True when the circuit `src → dst` is believed usable.
    pub fn circuit_up(&self, src: NodeId, dst: NodeId) -> bool {
        self.inner.read().expect("health lock").circuit_up(src, dst)
    }

    /// True when `node` is believed failed.
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.inner.read().expect("health lock").node_failed(node)
    }

    /// True when nothing is believed failed.
    pub fn is_healthy(&self) -> bool {
        self.inner.read().expect("health lock").is_empty()
    }

    /// A copy of the current failure state (for control-plane reports).
    pub fn snapshot(&self) -> FailureSet {
        self.inner.read().expect("health lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_keeps_events_time_sorted() {
        let mut plan = FaultPlan::new();
        plan.fail_link_at(300, NodeId(0), NodeId(1))
            .fail_node_at(100, NodeId(2))
            .restore_node_at(200, NodeId(2));
        let times: Vec<Nanos> = plan.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn ties_preserve_insertion_order() {
        let mut plan = FaultPlan::new();
        plan.fail_node_at(100, NodeId(1))
            .restore_node_at(100, NodeId(1));
        assert_eq!(plan.events()[0].action, FaultAction::Fail);
        assert_eq!(plan.events()[1].action, FaultAction::Restore);
    }

    #[test]
    fn events_apply_to_failure_sets() {
        let mut plan = FaultPlan::new();
        plan.node_outage(NodeId(3), 0, 100)
            .link_outage(NodeId(0), NodeId(1), 0, 100);
        let mut fs = FailureSet::none();
        for e in &plan.events()[..2] {
            e.apply(&mut fs);
        }
        assert!(!fs.circuit_up(NodeId(3), NodeId(0)));
        assert!(!fs.circuit_up(NodeId(0), NodeId(1)));
        for e in &plan.events()[2..] {
            e.apply(&mut fs);
        }
        assert!(fs.is_empty());
    }

    #[test]
    fn bidir_restore_clears_both_directions() {
        let mut fs = FailureSet::none();
        FaultEvent {
            at_ns: 0,
            action: FaultAction::Fail,
            target: FaultTarget::LinkBidir(NodeId(4), NodeId(5)),
        }
        .apply(&mut fs);
        assert!(!fs.circuit_up(NodeId(4), NodeId(5)));
        assert!(!fs.circuit_up(NodeId(5), NodeId(4)));
        FaultEvent {
            at_ns: 1,
            action: FaultAction::Restore,
            target: FaultTarget::LinkBidir(NodeId(4), NodeId(5)),
        }
        .apply(&mut fs);
        assert!(fs.is_empty());
    }

    #[test]
    fn storm_is_deterministic_per_seed() {
        let cfg = FaultStorm {
            seed: 9,
            horizon_ns: 1_000_000,
            mtbf_ns: 100_000.0,
            mttr_ns: 20_000.0,
            links: vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
            nodes: vec![NodeId(5)],
        };
        let a = FaultPlan::storm(&cfg);
        let b = FaultPlan::storm(&cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "storm over a long horizon yields events");
        let mut other = cfg.clone();
        other.seed = 10;
        assert_ne!(FaultPlan::storm(&other), a);
    }

    #[test]
    fn storm_pairs_every_failure_with_a_restore() {
        let cfg = FaultStorm {
            seed: 3,
            horizon_ns: 2_000_000,
            mtbf_ns: 50_000.0,
            mttr_ns: 10_000.0,
            links: vec![(NodeId(0), NodeId(1))],
            nodes: vec![],
        };
        let plan = FaultPlan::storm(&cfg);
        let fails = plan
            .events()
            .iter()
            .filter(|e| e.action == FaultAction::Fail)
            .count();
        let restores = plan.len() - fails;
        assert_eq!(fails, restores);
        // Replaying the whole plan leaves everything healthy.
        let mut fs = FailureSet::none();
        for e in plan.events() {
            e.apply(&mut fs);
        }
        assert!(fs.is_empty());
    }

    #[test]
    fn link_health_round_trips_state() {
        let health = LinkHealth::new();
        assert!(health.is_healthy());
        assert!(health.circuit_up(NodeId(0), NodeId(1)));
        let mut fs = FailureSet::none();
        fs.fail_node(NodeId(2));
        fs.fail_link(NodeId(0), NodeId(1));
        health.publish(&fs);
        let clone = health.clone();
        assert!(!clone.circuit_up(NodeId(0), NodeId(1)));
        assert!(clone.node_failed(NodeId(2)));
        assert!(!clone.is_healthy());
        assert_eq!(clone.snapshot(), fs);
        health.publish(&FailureSet::none());
        assert!(clone.is_healthy());
    }
}
