//! Self-profiling hooks: where does the *simulator's* wall-clock go?
//!
//! The telemetry [`Probe`](crate::Probe) observes simulated behaviour;
//! this module observes the simulator itself. The engine is generic
//! over a [`Profiler`] and brackets each phase of `Engine::step` —
//! routing, flow enqueue, circuit transmission, delivery, schedule
//! reconfiguration, fault application — with a scoped timer. The
//! default [`NoopProfiler`] has `ENABLED = false`, so the timer never
//! reads the clock and the whole mechanism compiles away, mirroring
//! the zero-cost `NoopProbe` contract.
//!
//! Concrete profilers (wall-clock accumulation with percentiles) live
//! in `sorn-telemetry`; this module only defines the contract so the
//! engine stays dependency-free.

use std::time::Instant;

/// The engine phases a [`Profiler`] distinguishes.
///
/// The phases partition `Engine::step` disjointly — no span nests
/// inside another — so summed phase time never exceeds the run's
/// wall-clock time:
///
/// - [`Phase::FaultApply`]: applying due scripted fault events;
/// - [`Phase::Enqueue`]: activating newly arrived flows;
/// - [`Phase::Route`]: routing decisions that queue or drop a cell
///   (freshly injected or just arrived off a circuit);
/// - [`Phase::Deliver`]: routing decisions that terminate at the
///   destination, including flow-completion bookkeeping;
/// - [`Phase::Transmit`]: draining queues onto scheduled circuits;
/// - [`Phase::Reconfigure`]: mid-run schedule installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// A routing decision that leaves the cell queued (or dropped).
    Route,
    /// Newly arrived flows beginning to inject.
    Enqueue,
    /// Queue drain onto the circuits the schedule has up this slot.
    Transmit,
    /// Final-hop delivery and flow-completion bookkeeping.
    Deliver,
    /// Mid-run circuit-schedule installation (the §5 update).
    Reconfigure,
    /// Scripted fault events taking effect at a slot boundary.
    FaultApply,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 6] = [
        Phase::Route,
        Phase::Enqueue,
        Phase::Transmit,
        Phase::Deliver,
        Phase::Reconfigure,
        Phase::FaultApply,
    ];

    /// A stable dense index (`0..Phase::COUNT`) for array-backed stores.
    pub fn index(self) -> usize {
        match self {
            Phase::Route => 0,
            Phase::Enqueue => 1,
            Phase::Transmit => 2,
            Phase::Deliver => 3,
            Phase::Reconfigure => 4,
            Phase::FaultApply => 5,
        }
    }

    /// Number of phases.
    pub const COUNT: usize = 6;

    /// The phase's snake_case name, used in metric names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Route => "route",
            Phase::Enqueue => "enqueue",
            Phase::Transmit => "transmit",
            Phase::Deliver => "deliver",
            Phase::Reconfigure => "reconfigure",
            Phase::FaultApply => "fault_apply",
        }
    }
}

/// A sink for phase timings, cloned into each [`PhaseSpan`].
///
/// `ENABLED` gates every clock read at compile time: when it is
/// `false` (the [`NoopProfiler`]), spans never call `Instant::now`
/// and `record` is never reached, so the engine's instrumented hot
/// path monomorphizes to exactly the uninstrumented code.
///
/// Implementations use interior mutability (the engine holds the
/// profiler while spans record into clones of it), so `record` takes
/// `&self` and `Clone` is expected to be a cheap handle copy.
pub trait Profiler: Clone {
    /// Whether spans should read the clock at all.
    const ENABLED: bool;

    /// Accepts one completed phase timing.
    fn record(&self, phase: Phase, nanos: u64);

    /// Opens an RAII span: the phase is timed from now until the guard
    /// drops (or is reclassified via [`PhaseSpan::set_phase`]).
    fn span(&self, phase: Phase) -> PhaseSpan<Self> {
        PhaseSpan {
            start: if Self::ENABLED {
                Some(Instant::now())
            } else {
                None
            },
            profiler: self.clone(),
            phase,
        }
    }
}

/// The default profiler: never reads the clock, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProfiler;

impl Profiler for NoopProfiler {
    const ENABLED: bool = false;

    fn record(&self, _phase: Phase, _nanos: u64) {}
}

/// An RAII guard timing one engine phase.
///
/// Created by [`Profiler::span`]; records the elapsed wall-clock time
/// into its profiler on drop. Holds a clone of the profiler rather
/// than a borrow so the engine can keep mutating itself inside the
/// span. For a disabled profiler the guard holds no start time and
/// drops without side effects.
#[derive(Debug)]
pub struct PhaseSpan<F: Profiler> {
    profiler: F,
    phase: Phase,
    start: Option<Instant>,
}

impl<F: Profiler> PhaseSpan<F> {
    /// Reclassifies the span — used where the phase is only known at
    /// exit (a routing decision that turns out to be a delivery).
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }
}

impl<F: Profiler> Drop for PhaseSpan<F> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.profiler
                .record(self.phase, start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Clone, Default)]
    struct Recording(Rc<RefCell<Vec<(Phase, u64)>>>);

    impl Profiler for Recording {
        const ENABLED: bool = true;

        fn record(&self, phase: Phase, nanos: u64) {
            self.0.borrow_mut().push((phase, nanos));
        }
    }

    #[test]
    fn span_records_its_phase_on_drop() {
        let p = Recording::default();
        {
            let _span = p.span(Phase::Transmit);
        }
        let log = p.0.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, Phase::Transmit);
    }

    #[test]
    fn reclassified_span_records_the_final_phase() {
        let p = Recording::default();
        {
            let mut span = p.span(Phase::Route);
            span.set_phase(Phase::Deliver);
        }
        assert_eq!(p.0.borrow()[0].0, Phase::Deliver);
    }

    #[test]
    fn noop_profiler_never_starts_the_clock() {
        let span = NoopProfiler.span(Phase::Route);
        assert!(span.start.is_none());
    }

    #[test]
    fn phase_indices_are_dense_and_names_unique() {
        let mut seen = [false; Phase::COUNT];
        let mut names = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
            assert!(names.insert(p.name()));
        }
        assert!(seen.iter().all(|&s| s));
    }
}
