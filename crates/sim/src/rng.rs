//! Per-node counter-based RNG streams.
//!
//! The engine keeps one [`NodeRng`] per node instead of a single shared
//! generator. Each stream is SplitMix64 keyed by `(run seed, node id)`,
//! so the value a router draws for a decision depends only on the seed,
//! the deciding node, and *how many decisions that node has made so
//! far* — never on the global interleaving of decisions across nodes.
//! That property is what lets the engine shard a slot's routing work
//! across threads and still produce bit-identical results at any thread
//! count: per-node decision order is canonical (arrival order at the
//! node), and nothing else feeds the stream.

/// Weyl-sequence increment of SplitMix64 (the golden ratio, 2^64/φ).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Applies the SplitMix64 output finalizer. Shared with the flow
/// tracer's sampler so traced-set membership is a pure hash of
/// `(seed, flow id)` that never touches these streams.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One node's deterministic decision stream.
///
/// Draw `i` of the stream for `(seed, node)` is
/// `mix(key(seed, node) + (i + 1) · GOLDEN)` — a pure function of the
/// key and the node's decision counter, with no shared state between
/// nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRng {
    state: u64,
}

impl NodeRng {
    /// The stream for `node` under `seed`.
    ///
    /// The two inputs go through separate finalizer rounds so that
    /// nearby `(seed, node)` pairs land on unrelated streams (adjacent
    /// raw keys would otherwise share the Weyl sequence).
    pub fn for_node(seed: u64, node: u32) -> Self {
        let key = mix(mix(seed) ^ (node as u64 + 1).wrapping_mul(GOLDEN));
        NodeRng { state: key }
    }

    /// The raw Weyl-sequence state, for checkpointing. Together with
    /// [`NodeRng::from_raw_state`] this round-trips a stream exactly:
    /// the state *is* the stream position.
    pub(crate) fn raw_state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a stream at the exact position captured by
    /// [`NodeRng::raw_state`].
    pub(crate) fn from_raw_state(state: u64) -> Self {
        NodeRng { state }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// Uniform draw in `[0, bound)` via the widening-multiply map.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_a_pure_function_of_seed_node_and_counter() {
        let mut a = NodeRng::for_node(42, 7);
        let mut b = NodeRng::for_node(42, 7);
        let draws: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        // Interleave unrelated draws on another stream: b must not care.
        let mut other = NodeRng::for_node(42, 8);
        let again: Vec<u64> = (0..16)
            .map(|_| {
                other.next_u64();
                b.next_u64()
            })
            .collect();
        assert_eq!(draws, again);
    }

    #[test]
    fn distinct_nodes_and_seeds_get_distinct_streams() {
        let mut base = NodeRng::for_node(0, 0);
        let mut node = NodeRng::for_node(0, 1);
        let mut seed = NodeRng::for_node(1, 0);
        let b: Vec<u64> = (0..8).map(|_| base.next_u64()).collect();
        let n: Vec<u64> = (0..8).map(|_| node.next_u64()).collect();
        let s: Vec<u64> = (0..8).map(|_| seed.next_u64()).collect();
        assert_ne!(b, n);
        assert_ne!(b, s);
        assert_ne!(n, s);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers_small_ranges() {
        let mut rng = NodeRng::for_node(3, 5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must hit all of 0..7");
    }

    #[test]
    fn gen_f64_is_a_unit_uniform() {
        let mut rng = NodeRng::for_node(9, 2);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        NodeRng::for_node(0, 0).gen_range(0);
    }
}
