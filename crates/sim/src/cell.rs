//! Cells and flows: the units of traffic in the simulator.
//!
//! A *flow* is an application-level transfer of `size_bytes` from a source
//! node to a destination node, arriving at a given time. The source NIC
//! chops flows into fixed-size *cells*, one of which fits a single circuit
//! time slot (Sirius-style cell switching).

use crate::config::Nanos;
use sorn_topology::NodeId;

/// Identifier of a flow within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// An application-level transfer demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Unique id.
    pub id: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Transfer size in bytes.
    pub size_bytes: u64,
    /// Arrival time at the source NIC.
    pub arrival_ns: Nanos,
}

impl Flow {
    /// Number of cells this flow occupies at the given cell size.
    pub fn cell_count(&self, cell_bytes: u32) -> u64 {
        self.size_bytes.div_ceil(cell_bytes as u64).max(1)
    }
}

/// A single in-flight cell.
///
/// `tag` is router-owned scratch state (e.g. the bitmask of dimensions a
/// cell has already sprayed across in an h-dimensional ORN); the engine
/// stores it opaquely and hands it back on every routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Owning flow.
    pub flow: FlowId,
    /// Cell index within the flow (0-based).
    pub seq: u64,
    /// Original source node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Time the cell was injected into the source queueing system.
    pub injected_ns: Nanos,
    /// Hops traversed so far.
    pub hops: u8,
    /// Router-owned scratch state.
    pub tag: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_count_rounds_up_and_floors_at_one() {
        let f = Flow {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 2501,
            arrival_ns: 0,
        };
        assert_eq!(f.cell_count(1250), 3);
        let tiny = Flow { size_bytes: 0, ..f };
        assert_eq!(tiny.cell_count(1250), 1);
        let exact = Flow {
            size_bytes: 2500,
            ..f
        };
        assert_eq!(exact.cell_count(1250), 2);
    }
}
