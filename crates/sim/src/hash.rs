//! A fast, deterministic hasher for the engine's internal maps.
//!
//! The engine consults `active_index` once per delivered cell, so the
//! default SipHash (keyed, DoS-resistant) is measurable overhead on
//! the hot path. Keys here are [`FlowId`](crate::FlowId)s the
//! simulation itself assigns — never attacker-controlled — so a
//! single-multiply mix (the FxHash construction) is safe and several
//! times cheaper. The hasher is unkeyed, so it is also deterministic
//! across runs; the engine never iterates these maps, so even the
//! bucket order cannot leak into results.

use std::hash::{BuildHasher, Hasher};

/// Multiplier from the FxHash construction (Firefox / rustc): an odd
/// constant with well-mixed bits, applied once per written word.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// `BuildHasher` producing [`FastHasher`]s; zero-sized and unkeyed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastHashBuilder;

impl BuildHasher for FastHashBuilder {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher(0)
    }
}

/// One-multiply-per-word hasher (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(SEED);
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowId;
    use std::collections::HashMap;

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let hash = |x: u64| {
            let mut h = FastHashBuilder.build_hasher();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        // Sequential ids (the common FlowId pattern) must not collide.
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u64 {
            assert!(seen.insert(hash(id)));
        }
    }

    #[test]
    fn works_as_a_flow_index() {
        let mut m: HashMap<FlowId, usize, FastHashBuilder> = HashMap::default();
        for i in 0..1000 {
            m.insert(FlowId(i * 7 + 3), i as usize);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&FlowId(i * 7 + 3)), Some(&(i as usize)));
        }
        assert_eq!(m.remove(&FlowId(3)), Some(0));
        assert!(!m.contains_key(&FlowId(3)));
    }
}
