//! Fast-forward equivalence: `Engine::fast_forward_to` must be
//! bit-identical to slot-by-slot stepping (DESIGN.md §15).
//!
//! Every scenario here has long quiescent gaps — bursty workloads with
//! hundreds of thousands of empty slots between them — plus the things
//! that must *terminate* a gap: scripted fault events, fault storms,
//! pending flow activations, mid-run `install_schedule` boundaries, and
//! an interval sampler's marks. Each scenario runs once with
//! fast-forward off (pure `step_quiet` stepping) and once with it on,
//! at 1–4 engine threads, and the complete observable state must match:
//! `Metrics` (including `slots_skipped`), rendered trace spans,
//! flight-recorder dumps, WEATHER reports (text and JSON), sampler
//! event streams, and checkpoint bytes — including runs interrupted by
//! a checkpoint/restore in the middle of a gap.

use proptest::prelude::*;
use sorn_sim::{
    Cell, ClassId, Engine, FaultPlan, FaultStorm, Flow, FlowId, Metrics, NodeRng, RouteDecision,
    Router, SimConfig, Snapshot,
};
use sorn_telemetry::{
    FlightRecorder, FlowTraceCollector, IntervalSampler, MemorySink, TraceEvent, WeatherProbe,
    DEFAULT_CAPACITY,
};
use sorn_topology::builders::round_robin;
use sorn_topology::{CircuitSchedule, CliqueMap, NodeId};

/// Same two-hop spray router as `checkpoint_equivalence.rs`: consumes
/// the per-node RNG stream, so any divergence in what the busy slots
/// around a gap see shows up immediately.
struct CoinSprayRouter;

const SPRAY: ClassId = ClassId(0);

impl Router for CoinSprayRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, rng: &mut NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if cell.tag == 0 {
            cell.tag = 1;
            if rng.gen_range(2) == 0 {
                return RouteDecision::ToClass(SPRAY);
            }
        }
        RouteDecision::ToNode(cell.dst)
    }

    fn class_admits(&self, _class: ClassId, cell: &Cell, from: NodeId, to: NodeId) -> bool {
        to != from && to != cell.src
    }

    fn classes(&self) -> &[ClassId] {
        std::slice::from_ref(&SPRAY)
    }

    fn max_hops(&self) -> u8 {
        4
    }

    fn name(&self) -> &str {
        "coin-spray"
    }
}

/// One fully-specified long-horizon scenario.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    uplinks: usize,
    seed: u64,
    trace_one_in: u64,
    /// Burst start times (ns); each burst holds `burst_flows` flows
    /// arriving within 2 µs of its start, with quiet gaps between.
    bursts: Vec<u64>,
    burst_flows: usize,
    /// `(src, dst, from_ns, until_ns)` scripted link outages (often in
    /// the middle of an otherwise-quiet gap).
    outages: Vec<(u32, u32, u64, u64)>,
    /// Adds a seeded MTBF/MTTR `FaultStorm` over the low links/nodes.
    storm: bool,
    /// Installs a rotated schedule (plus reroute) when this slot starts.
    reconfigure_at: Option<u64>,
    /// Attaches an `IntervalSampler` at this interval (ns) when > 0.
    sample_interval_ns: u64,
}

/// Absolute drain cap for every run.
const MAX_SLOTS: u64 = 1_000_000;

/// Seeded bursty workload: `burst_flows` flows per burst, each burst's
/// arrivals within 2 µs of its start time.
fn seeded_flows(sc: &Scenario) -> Vec<Flow> {
    let mut rng = NodeRng::for_node(sc.seed, u32::MAX);
    let mut flows = Vec::new();
    for &burst_at in &sc.bursts {
        for _ in 0..sc.burst_flows {
            let src = rng.gen_range(sc.n as u64) as u32;
            let mut dst = rng.gen_range(sc.n as u64) as u32;
            if dst == src {
                dst = (dst + 1) % sc.n as u32;
            }
            flows.push(Flow {
                id: FlowId(flows.len() as u64),
                src: NodeId(src),
                dst: NodeId(dst),
                size_bytes: (1 + rng.gen_range(6)) * 1250,
                arrival_ns: burst_at + rng.gen_range(2_000),
            });
        }
    }
    flows
}

/// The full probe stack: weather + causal tracing + flight recorder +
/// (optionally) an interval sampler, so a single equivalence check
/// covers every batching path at once.
type Obs = (
    WeatherProbe,
    (
        FlowTraceCollector,
        (FlightRecorder, Option<IntervalSampler<MemorySink>>),
    ),
);

fn config(sc: &Scenario, threads: usize) -> SimConfig {
    SimConfig {
        uplinks: sc.uplinks,
        seed: sc.seed,
        engine_threads: threads,
        trace_one_in: sc.trace_one_in,
        ..SimConfig::default()
    }
}

fn fresh_probe(sc: &Scenario, cfg: &SimConfig) -> Obs {
    (
        WeatherProbe::new(CliqueMap::contiguous(sc.n, 2), 4),
        (
            FlowTraceCollector::new(cfg.slot_ns),
            (
                FlightRecorder::new(DEFAULT_CAPACITY),
                (sc.sample_interval_ns > 0)
                    .then(|| IntervalSampler::new(MemorySink::new(), sc.sample_interval_ns)),
            ),
        ),
    )
}

fn schedules(sc: &Scenario) -> (CircuitSchedule, CircuitSchedule) {
    let base = round_robin(sc.n).unwrap();
    let rotated =
        CircuitSchedule::from_matchings(base.matchings().iter().rev().cloned().collect()).unwrap();
    (base, rotated)
}

fn plan(sc: &Scenario) -> FaultPlan {
    let mut plan = if sc.storm {
        FaultPlan::storm(&FaultStorm {
            seed: 7,
            horizon_ns: 20_000,
            mtbf_ns: 3_000.0,
            mttr_ns: 800.0,
            links: vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
            nodes: vec![NodeId(1)],
        })
    } else {
        FaultPlan::new()
    };
    for &(s, d, from, until) in &sc.outages {
        plan.link_outage(NodeId(s), NodeId(d), from, until);
    }
    plan
}

/// Steps (or jumps) to the end. The fast-forward target is the next
/// *driver* boundary — the reconfiguration slot or the run bound —
/// exactly as a real driver would pass it.
fn drive_to_end<'a>(eng: &mut Engine<'a, Obs>, sc: &Scenario, rotated: &'a CircuitSchedule) {
    drive_until(eng, sc, rotated, MAX_SLOTS);
}

fn drive_until<'a>(
    eng: &mut Engine<'a, Obs>,
    sc: &Scenario,
    rotated: &'a CircuitSchedule,
    stop_at: u64,
) {
    while !eng.is_drained() && eng.now_slot() < stop_at {
        if sc.reconfigure_at == Some(eng.now_slot()) {
            eng.install_schedule(rotated);
            eng.reroute_queued().unwrap();
        }
        let target = match sc.reconfigure_at {
            Some(r) if eng.now_slot() < r => stop_at.min(r),
            _ => stop_at,
        };
        if eng.fast_forward_to(target) == 0 {
            eng.step().unwrap();
        }
    }
}

/// Everything a run produces that fast-forward must reproduce exactly.
#[derive(Debug, Clone, PartialEq)]
struct RunOutput {
    metrics: Metrics,
    spans: String,
    flight: String,
    weather_txt: String,
    weather_json: String,
    samples: Vec<TraceEvent>,
    /// Checkpoint bytes at the end of the run (probe blobs included),
    /// pinning engine *state* — calendar head included — not just
    /// outputs.
    final_snapshot: Vec<u8>,
}

fn finish(eng: Engine<'_, Obs>) -> RunOutput {
    let snapshot = snapshot_with_blobs(&eng);
    let metrics = eng.metrics().clone();
    let (weather, (collector, (recorder, sampler))) = eng.finish();
    RunOutput {
        metrics,
        spans: collector.render_all(),
        flight: recorder.dump_string(),
        weather_txt: weather.render_txt("ff"),
        weather_json: weather.render_json("ff"),
        samples: sampler.map_or_else(Vec::new, |s| s.into_sink().events),
        final_snapshot: snapshot.to_bytes(),
    }
}

fn snapshot_with_blobs(eng: &Engine<'_, Obs>) -> Snapshot {
    let mut snap = eng.checkpoint();
    // The snapshot embeds `engine_threads`; pin it so byte comparisons
    // across thread counts see only real state divergence.
    snap.set_engine_threads(1);
    let (weather, (collector, (recorder, _))) = eng.probe();
    snap.attach_blob("weather", weather.to_bytes());
    snap.attach_blob("trace", collector.to_bytes());
    snap.attach_blob("flight", recorder.to_bytes());
    snap
}

fn build<'a>(
    sc: &Scenario,
    base: &'a CircuitSchedule,
    router: &'a CoinSprayRouter,
    threads: usize,
    fast_forward: bool,
) -> Engine<'a, Obs> {
    let cfg = config(sc, threads);
    let probe = fresh_probe(sc, &cfg);
    let mut eng = Engine::with_probe(cfg, base, router, probe);
    eng.set_fast_forward(fast_forward);
    eng.add_flows(seeded_flows(sc)).unwrap();
    eng.set_fault_plan(plan(sc));
    eng
}

fn run(sc: &Scenario, threads: usize, fast_forward: bool) -> RunOutput {
    let (base, rotated) = schedules(sc);
    let router = CoinSprayRouter;
    let mut eng = build(sc, &base, &router, threads, fast_forward);
    drive_to_end(&mut eng, sc, &rotated);
    finish(eng)
}

/// The core sweep: per-slot stepping at 1 thread is the reference;
/// fast-forward must match it bit-for-bit at 1 and 4 threads, and must
/// actually have skipped a significant span (or the scenario isn't
/// exercising anything).
fn assert_fast_forward_equivalence(sc: &Scenario) {
    let reference = run(sc, 1, false);
    assert!(
        !reference.spans.is_empty(),
        "scenario traced nothing — not a useful equivalence check: {sc:?}"
    );
    for threads in [1, 4] {
        let ff = run(sc, threads, true);
        assert_eq!(
            reference, ff,
            "fast-forward at {threads} threads diverged on {sc:?}"
        );
    }
    // The gap really was jumped: the per-slot reference counts the same
    // quiet slots one at a time (so metrics agree), but the ff run must
    // have covered most of them in batched spans.
    assert!(
        reference.metrics.slots_skipped > 1_000,
        "scenario had no real quiet gap ({} skipped): {sc:?}",
        reference.metrics.slots_skipped
    );
}

fn gap_scenario() -> Scenario {
    Scenario {
        n: 8,
        uplinks: 2,
        seed: 3,
        trace_one_in: 1,
        bursts: vec![0, 1_500_000],
        burst_flows: 40,
        outages: vec![],
        storm: false,
        reconfigure_at: None,
        sample_interval_ns: 0,
    }
}

#[test]
fn plain_gap_run_is_bit_identical() {
    assert_fast_forward_equivalence(&gap_scenario());
}

#[test]
fn faults_inside_the_gap_are_bit_identical() {
    // A scripted outage in the middle of the long gap plus an early
    // storm: jumps must stop at every fault boundary and failure
    // accounting (failure_slots, episodes, recovery times) must match.
    assert_fast_forward_equivalence(&Scenario {
        n: 10,
        uplinks: 2,
        seed: 6,
        trace_one_in: 1,
        bursts: vec![0, 2_000_000],
        burst_flows: 50,
        outages: vec![(4, 7, 500_000, 700_000), (5, 2, 400, 1_500)],
        storm: true,
        reconfigure_at: None,
        sample_interval_ns: 0,
    });
}

#[test]
fn midgap_reconfiguration_is_bit_identical() {
    // install_schedule at slot 7000 — deep inside the quiet gap. The
    // driver bounds the jump at the reconfiguration slot, and the
    // weather timeline must attribute the reconfig to the right epoch.
    assert_fast_forward_equivalence(&Scenario {
        n: 8,
        uplinks: 1,
        seed: 9,
        trace_one_in: 1,
        bursts: vec![0, 3_000_000],
        burst_flows: 45,
        outages: vec![(0, 3, 200, 1_800)],
        storm: false,
        reconfigure_at: Some(7_000),
        sample_interval_ns: 0,
    });
}

#[test]
fn interval_sampler_marks_are_bit_identical() {
    // A sampler mark every 7700 ns (77 slots, deliberately off the
    // schedule period): every jump is bounded by `next_boundary_ns`, so
    // the sampler emits exactly the per-slot snapshot stream —
    // including the varying idle/utilization counters inside the gap.
    assert_fast_forward_equivalence(&Scenario {
        n: 8,
        uplinks: 2,
        seed: 12,
        trace_one_in: 2,
        bursts: vec![0, 900_000],
        burst_flows: 40,
        outages: vec![(1, 5, 300_000, 320_000)],
        storm: false,
        reconfigure_at: None,
        sample_interval_ns: 7_700,
    });
}

/// Satellite regression (pinned *before* `fast_forward_to` was built on
/// top): a fault event scheduled inside a quiet gap must terminate the
/// gap. Per-slot stepping must apply the event at exactly slot
/// `ceil(at_ns / slot_ns)`, and a fast-forward jump must stop at that
/// slot rather than leaping over the outage.
#[test]
fn fault_event_inside_quiet_gap_terminates_the_gap() {
    let sc = Scenario {
        n: 8,
        uplinks: 2,
        seed: 4,
        trace_one_in: 1,
        bursts: vec![0],
        burst_flows: 30,
        outages: vec![(2, 5, 50_000, 60_000)],
        storm: false,
        reconfigure_at: None,
        sample_interval_ns: 0,
    };
    let (base, rotated) = schedules(&sc);
    let router = CoinSprayRouter;
    let fault_slot = 50_000_u64.div_ceil(config(&sc, 1).slot_ns); // = 500

    // Per-slot: quiet stepping keeps the fault plan's cursor in view,
    // so the fault fires at exactly `fault_slot` even though every slot
    // around it is quiet.
    let mut eng = build(&sc, &base, &router, 1, false);
    while eng.now_slot() < fault_slot {
        assert!(
            eng.failures().is_empty(),
            "fault applied early at slot {}",
            eng.now_slot()
        );
        eng.step().unwrap();
    }
    assert_eq!(eng.metrics().failure_slots, 0);
    eng.step().unwrap();
    assert!(
        !eng.failures().is_empty(),
        "fault did not apply at slot {fault_slot}"
    );
    assert_eq!(eng.metrics().failure_slots, 1);

    // Fast-forward: a jump aimed far past the fault must stop at the
    // fault slot with the outage not yet applied.
    let mut eng = build(&sc, &base, &router, 1, true);
    drive_until(&mut eng, &sc, &rotated, 40); // drain the burst
    assert!(eng.is_drained());
    let from = eng.now_slot();
    let skipped = eng.fast_forward_to(MAX_SLOTS);
    assert_eq!(
        eng.now_slot(),
        fault_slot,
        "jump overshot the fault boundary"
    );
    assert_eq!(skipped, fault_slot - from);
    assert!(eng.failures().is_empty(), "jump applied the fault itself");
    assert_eq!(eng.fast_forward_to(MAX_SLOTS), 0, "jumped into an outage");
    eng.step().unwrap();
    assert!(!eng.failures().is_empty());
    assert_eq!(eng.metrics().failure_slots, 1);
}

/// Checkpointing in the middle of a gap: a fast-forward run stopped at
/// slot `stop_at` must produce byte-identical checkpoint bytes to the
/// per-slot run stopped there, and resuming (at any thread count, with
/// fast-forward re-enabled) must land on the same final output.
fn assert_checkpoint_equivalence(sc: &Scenario, stops: &[u64]) {
    let (base, rotated) = schedules(sc);
    let router = CoinSprayRouter;
    let reference = run(sc, 1, false);
    for &stop_at in stops {
        let mut slow = build(sc, &base, &router, 1, false);
        drive_until(&mut slow, sc, &rotated, stop_at);
        let slow_snap = snapshot_with_blobs(&slow);
        drop(slow);

        let mut fast = build(sc, &base, &router, 1, true);
        drive_until(&mut fast, sc, &rotated, stop_at);
        let fast_snap = snapshot_with_blobs(&fast);
        drop(fast);
        assert_eq!(
            slow_snap.to_bytes(),
            fast_snap.to_bytes(),
            "checkpoint bytes at slot {stop_at} diverged on {sc:?}"
        );

        for restore_threads in [1, 4] {
            let mut snap = Snapshot::from_bytes(&fast_snap.to_bytes()).unwrap();
            snap.set_engine_threads(restore_threads);
            let cliques = CliqueMap::contiguous(sc.n, 2);
            let weather = WeatherProbe::from_bytes(snap.blob("weather").unwrap(), cliques).unwrap();
            let collector = FlowTraceCollector::from_bytes(snap.blob("trace").unwrap()).unwrap();
            let recorder = FlightRecorder::from_bytes(snap.blob("flight").unwrap()).unwrap();
            let current = match sc.reconfigure_at {
                Some(t) if snap.slot() > t => &rotated,
                _ => &base,
            };
            let probe: Obs = (weather, (collector, (recorder, None)));
            let mut eng = Engine::restore_with_probe(&snap, current, &router, probe).unwrap();
            eng.set_fast_forward(true);
            drive_to_end(&mut eng, sc, &rotated);
            let resumed = finish(eng);
            assert_eq!(
                reference, resumed,
                "resume at slot {stop_at} ({restore_threads} threads) diverged on {sc:?}"
            );
        }
    }
}

#[test]
fn midgap_checkpoints_are_bit_identical_and_resume_exactly() {
    // Stops inside the first burst, deep inside the gap, and just
    // before the second burst lands.
    assert_checkpoint_equivalence(
        &Scenario {
            n: 8,
            uplinks: 2,
            seed: 3,
            trace_one_in: 1,
            bursts: vec![0, 1_500_000],
            burst_flows: 40,
            outages: vec![(1, 6, 600_000, 640_000)],
            storm: false,
            reconfigure_at: None,
            sample_interval_ns: 0,
        },
        &[10, 4_000, 14_999],
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any scenario this strategy can draw — random burst layouts,
    /// outages, an optional storm, an optional mid-gap reconfiguration
    /// — is bit-identical with fast-forward on, at 1–4 threads.
    #[test]
    fn fast_forward_is_bit_identical_for_random_scenarios(
        n in 4usize..7,
        uplinks in 1usize..3,
        seed in 0u64..500,
        one_in in 1u64..4,
        burst_flows in 10usize..40,
        gap_ns in 100_000u64..2_000_000,
        storm in proptest::bool::ANY,
        reconfigure in proptest::option::of(100u64..5_000),
        sample in proptest::option::of(1_000u64..20_000),
        threads in 1usize..5,
        outages in proptest::collection::vec(
            (0u32..6, 0u32..6, 0u64..1_500_000, 1u64..200_000), 0..3),
    ) {
        let n = n * 2; // CliqueMap::contiguous(n, 2) needs even n
        let sc = Scenario {
            n,
            uplinks,
            seed,
            trace_one_in: one_in,
            bursts: vec![0, gap_ns],
            burst_flows,
            outages: outages
                .into_iter()
                .filter(|&(s, d, _, _)| s != d && (s as usize) < n && (d as usize) < n)
                .map(|(s, d, from, len)| (s, d, from, from + len))
                .collect(),
            storm,
            reconfigure_at: reconfigure,
            sample_interval_ns: sample.unwrap_or(0),
        };
        prop_assert_eq!(run(&sc, 1, false), run(&sc, threads, true));
    }
}
