//! Serial/parallel equivalence: `SimConfig::engine_threads` must never
//! change a single observable bit of a run.
//!
//! The sharded engine's determinism argument (per-node RNG streams,
//! node-owned queue mutations, canonical node-ordered merges — see
//! DESIGN.md §10) is checked here end to end: every scenario runs at
//! 1, 2, 3, and 4 threads and the full [`Metrics`] structs — flow
//! records in order, latency histograms, link matrices — must compare
//! equal, along with the queue and stranded counters.
//!
//! Two layers:
//!
//! - seeded `#[test]` sweeps that always run (a fixed grid of sizes,
//!   uplink counts, loads, fault scripts, and a mid-run schedule swap);
//! - a `proptest` that draws whole scenarios — topology size, workload,
//!   outages, thread count — at random.

use proptest::prelude::*;
use sorn_sim::{
    Cell, ClassId, Engine, Flow, FlowId, Metrics, NodeRng, RouteDecision, Router, SimConfig,
};
use sorn_topology::builders::round_robin;
use sorn_topology::NodeId;

/// A two-hop spray router that consumes the per-node RNG stream and
/// exercises both queue kinds: each cell flips a coin between going
/// direct (`ToNode`) and riding the spray class over whatever circuit
/// comes up first. Decision order therefore matters — any reordering
/// of `decide` calls at a node shows up as a different run.
struct CoinSprayRouter;

const SPRAY: ClassId = ClassId(0);

impl Router for CoinSprayRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, rng: &mut NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if cell.tag == 0 {
            cell.tag = 1;
            if rng.gen_range(2) == 0 {
                return RouteDecision::ToClass(SPRAY);
            }
        }
        RouteDecision::ToNode(cell.dst)
    }

    fn class_admits(&self, _class: ClassId, cell: &Cell, from: NodeId, to: NodeId) -> bool {
        to != from && to != cell.src
    }

    fn classes(&self) -> &[ClassId] {
        std::slice::from_ref(&SPRAY)
    }

    fn max_hops(&self) -> u8 {
        4
    }

    fn name(&self) -> &str {
        "coin-spray"
    }
}

/// One fully-specified scenario; everything a run depends on.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    uplinks: usize,
    seed: u64,
    flows: Vec<Flow>,
    /// `(src, dst, from_ns, until_ns)` link outages.
    outages: Vec<(u32, u32, u64, u64)>,
    /// Node taken down for a window, if any: `(node, from_ns, until_ns)`.
    node_outage: Option<(u32, u64, u64)>,
    /// Swap to a fresh schedule + reroute after this many slots.
    swap_after_slots: Option<u64>,
}

/// Generates a seeded workload without any external RNG: the simulator's
/// own counter-based stream doubles as the scenario generator.
fn seeded_flows(n: usize, seed: u64, count: usize) -> Vec<Flow> {
    let mut rng = NodeRng::for_node(seed, u32::MAX);
    (0..count)
        .map(|i| {
            let src = rng.gen_range(n as u64) as u32;
            let mut dst = rng.gen_range(n as u64) as u32;
            if dst == src {
                dst = (dst + 1) % n as u32;
            }
            Flow {
                id: FlowId(i as u64),
                src: NodeId(src),
                dst: NodeId(dst),
                size_bytes: (1 + rng.gen_range(6)) * 1250,
                arrival_ns: rng.gen_range(2_000),
            }
        })
        .collect()
}

/// Runs the scenario at the given thread count and returns everything
/// observable: final metrics, queued cells, in-flight cells, stranded
/// count.
fn run(sc: &Scenario, threads: usize) -> (Metrics, usize, usize, u64) {
    let sched = round_robin(sc.n).unwrap();
    let swap_sched = round_robin(sc.n).unwrap();
    let router = CoinSprayRouter;
    let cfg = SimConfig {
        uplinks: sc.uplinks,
        seed: sc.seed,
        engine_threads: threads,
        ..SimConfig::default()
    };
    let mut eng = Engine::new(cfg, &sched, &router);
    eng.add_flows(sc.flows.clone()).unwrap();
    let mut plan = sorn_sim::FaultPlan::new();
    for &(s, d, from, until) in &sc.outages {
        plan.link_outage(NodeId(s), NodeId(d), from, until);
    }
    if let Some((v, from, until)) = sc.node_outage {
        plan.node_outage(NodeId(v), from, until);
    }
    eng.set_fault_plan(plan);
    if let Some(slots) = sc.swap_after_slots {
        eng.run_slots(slots).unwrap();
        eng.install_schedule(&swap_sched);
        eng.reroute_queued().unwrap();
    }
    eng.run_until_drained(100_000).unwrap();
    let queued = eng.total_queued();
    let inflight = eng.inflight_cells();
    let stranded = eng.count_stranded();
    (eng.metrics().clone(), queued, inflight, stranded)
}

/// Asserts bit-identical outcomes at 1, 2, 3, and 4 engine threads.
fn assert_thread_invariant(sc: &Scenario) {
    let serial = run(sc, 1);
    for threads in [2, 3, 4] {
        let par = run(sc, threads);
        assert_eq!(
            serial, par,
            "threads={threads} diverged from serial on {sc:?}"
        );
    }
}

#[test]
fn healthy_runs_match_at_any_thread_count() {
    for (n, uplinks, flows, seed) in [
        (4, 1, 30, 1u64),
        (8, 2, 80, 2),
        (12, 3, 150, 3),
        (16, 4, 250, 4),
    ] {
        assert_thread_invariant(&Scenario {
            n,
            uplinks,
            seed,
            flows: seeded_flows(n, seed, flows),
            outages: vec![],
            node_outage: None,
            swap_after_slots: None,
        });
    }
}

#[test]
fn faulted_runs_match_at_any_thread_count() {
    for (seed, node_outage) in [(5u64, None), (6, Some((3u32, 300u64, 2_500u64)))] {
        assert_thread_invariant(&Scenario {
            n: 10,
            uplinks: 2,
            seed,
            flows: seeded_flows(10, seed, 120),
            outages: vec![(0, 1, 100, 2_000), (2, 5, 400, 1_500), (7, 3, 0, 3_000)],
            node_outage,
            swap_after_slots: None,
        });
    }
}

#[test]
fn schedule_swap_runs_match_at_any_thread_count() {
    assert_thread_invariant(&Scenario {
        n: 12,
        uplinks: 2,
        seed: 7,
        flows: seeded_flows(12, 7, 140),
        outages: vec![(1, 2, 200, 1_800)],
        node_outage: Some((5, 250, 1_000)),
        swap_after_slots: Some(8),
    });
}

proptest! {
    /// Any scenario this strategy can draw — topology size, uplink
    /// count, workload, outage script, optional node outage, optional
    /// mid-run schedule swap — produces identical metrics at every
    /// thread count.
    #[test]
    fn serial_equals_parallel_for_random_scenarios(
        n in 4usize..14,
        uplinks in 1usize..4,
        seed in 0u64..1_000,
        flow_count in 10usize..120,
        outages in proptest::collection::vec(
            (0u32..14, 0u32..14, 0u64..2_000, 1u64..3_000), 0..5),
        node_outage in proptest::option::of((0u32..14, 0u64..1_000, 1u64..2_500)),
        swap_after in proptest::option::of(1u64..16),
        threads in 2usize..6,
    ) {
        let sc = Scenario {
            n,
            uplinks,
            seed,
            flows: seeded_flows(n, seed, flow_count),
            outages: outages
                .into_iter()
                .filter(|&(s, d, _, _)| s != d && (s as usize) < n && (d as usize) < n)
                .map(|(s, d, from, len)| (s, d, from, from + len))
                .collect(),
            node_outage: node_outage
                .filter(|&(v, _, _)| (v as usize) < n)
                .map(|(v, from, len)| (v, from, from + len)),
            swap_after_slots: swap_after,
        };
        prop_assert_eq!(run(&sc, 1), run(&sc, threads));
    }
}
