//! Restore-equals-uninterrupted equivalence for the checkpoint system
//! (DESIGN.md §12).
//!
//! Every scenario is run twice: once straight through, and once
//! interrupted at a slot boundary — snapshot, serialize through the
//! fault-injecting in-memory store (full `to_bytes`/`from_bytes` round
//! trip included), restore, and continue. Final metrics, rendered trace
//! spans, and flight-recorder dumps must be byte-identical, at every
//! combination of 1–4 engine threads before and after the restore, for
//! plain runs, runs under an active seeded `FaultStorm`, and runs with
//! a mid-run `install_schedule` reconfiguration on either side of the
//! checkpoint. A committed golden checkpoint pins the on-disk byte
//! format, and a sweep over every byte offset of a corrupted generation
//! proves the loader falls back to the older valid one without ever
//! panicking.

use proptest::prelude::*;
use sorn_sim::{
    Cell, CheckpointFaultFs, CheckpointStore, ClassId, Engine, FaultPlan, FaultStorm, Flow, FlowId,
    Metrics, NodeRng, RouteDecision, Router, SimConfig, Snapshot, WriteFault,
};
use sorn_telemetry::{FlightRecorder, FlowTraceCollector, DEFAULT_CAPACITY};
use sorn_topology::builders::round_robin;
use sorn_topology::{CircuitSchedule, NodeId};

/// Same two-hop spray router as `trace_equivalence.rs`: consumes the
/// per-node RNG stream and exercises both queue kinds, so restore must
/// reproduce RNG counters and class queues exactly.
struct CoinSprayRouter;

const SPRAY: ClassId = ClassId(0);

impl Router for CoinSprayRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, rng: &mut NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if cell.tag == 0 {
            cell.tag = 1;
            if rng.gen_range(2) == 0 {
                return RouteDecision::ToClass(SPRAY);
            }
        }
        RouteDecision::ToNode(cell.dst)
    }

    fn class_admits(&self, _class: ClassId, cell: &Cell, from: NodeId, to: NodeId) -> bool {
        to != from && to != cell.src
    }

    fn classes(&self) -> &[ClassId] {
        std::slice::from_ref(&SPRAY)
    }

    fn max_hops(&self) -> u8 {
        4
    }

    fn name(&self) -> &str {
        "coin-spray"
    }
}

/// One fully-specified scenario; everything a checkpointed run depends on.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    uplinks: usize,
    seed: u64,
    trace_one_in: u64,
    flows: Vec<Flow>,
    /// `(src, dst, from_ns, until_ns)` scripted link outages.
    outages: Vec<(u32, u32, u64, u64)>,
    /// Adds a seeded MTBF/MTTR `FaultStorm` over the low links/nodes.
    storm: bool,
    /// Installs a rotated schedule (plus reroute) when this slot starts.
    reconfigure_at: Option<u64>,
}

/// Absolute drain cap for every run.
const MAX_SLOTS: u64 = 100_000;

/// Seeded workload drawn from the simulator's own counter-based stream.
fn seeded_flows(n: usize, seed: u64, count: usize) -> Vec<Flow> {
    let mut rng = NodeRng::for_node(seed, u32::MAX);
    (0..count)
        .map(|i| {
            let src = rng.gen_range(n as u64) as u32;
            let mut dst = rng.gen_range(n as u64) as u32;
            if dst == src {
                dst = (dst + 1) % n as u32;
            }
            Flow {
                id: FlowId(i as u64),
                src: NodeId(src),
                dst: NodeId(dst),
                size_bytes: (1 + rng.gen_range(6)) * 1250,
                arrival_ns: rng.gen_range(2_000),
            }
        })
        .collect()
}

type Obs = (FlowTraceCollector, FlightRecorder);

fn config(sc: &Scenario, threads: usize) -> SimConfig {
    SimConfig {
        uplinks: sc.uplinks,
        seed: sc.seed,
        engine_threads: threads,
        trace_one_in: sc.trace_one_in,
        ..SimConfig::default()
    }
}

fn fresh_probe(cfg: &SimConfig) -> Obs {
    (
        FlowTraceCollector::new(cfg.slot_ns),
        FlightRecorder::new(DEFAULT_CAPACITY),
    )
}

/// The run's two schedules: the base round robin and the rotated
/// variant a mid-run reconfiguration swaps in.
fn schedules(sc: &Scenario) -> (CircuitSchedule, CircuitSchedule) {
    let base = round_robin(sc.n).unwrap();
    let rotated =
        CircuitSchedule::from_matchings(base.matchings().iter().rev().cloned().collect()).unwrap();
    (base, rotated)
}

fn plan(sc: &Scenario) -> FaultPlan {
    let mut plan = if sc.storm {
        FaultPlan::storm(&FaultStorm {
            seed: 7,
            horizon_ns: 20_000,
            mtbf_ns: 3_000.0,
            mttr_ns: 800.0,
            links: vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
            nodes: vec![NodeId(1)],
        })
    } else {
        FaultPlan::new()
    };
    for &(s, d, from, until) in &sc.outages {
        plan.link_outage(NodeId(s), NodeId(d), from, until);
    }
    plan
}

fn maybe_reconfigure<'a>(eng: &mut Engine<'a, Obs>, sc: &Scenario, rotated: &'a CircuitSchedule) {
    if sc.reconfigure_at == Some(eng.now_slot()) {
        eng.install_schedule(rotated);
        eng.reroute_queued().unwrap();
    }
}

fn drive_to_end<'a>(eng: &mut Engine<'a, Obs>, sc: &Scenario, rotated: &'a CircuitSchedule) {
    while !eng.is_drained() && eng.now_slot() < MAX_SLOTS {
        maybe_reconfigure(eng, sc, rotated);
        eng.step().unwrap();
    }
}

/// Everything a run produces that restore must reproduce exactly.
#[derive(Debug, Clone, PartialEq)]
struct RunOutput {
    metrics: Metrics,
    spans: String,
    flight: String,
}

fn finish(eng: Engine<'_, Obs>) -> RunOutput {
    let metrics = eng.metrics().clone();
    let (collector, recorder) = eng.finish();
    RunOutput {
        metrics,
        spans: collector.render_all(),
        flight: recorder.dump_string(),
    }
}

fn run_uninterrupted(sc: &Scenario, threads: usize) -> RunOutput {
    let (base, rotated) = schedules(sc);
    let router = CoinSprayRouter;
    let cfg = config(sc, threads);
    let probe = fresh_probe(&cfg);
    let mut eng = Engine::with_probe(cfg, &base, &router, probe);
    eng.add_flows(sc.flows.clone()).unwrap();
    eng.set_fault_plan(plan(sc));
    drive_to_end(&mut eng, sc, &rotated);
    finish(eng)
}

/// Runs to `stop_at`, checkpoints (probe state riding along as blobs),
/// round-trips the snapshot through the in-memory store — serialized
/// bytes, generation files, `load_latest` — and finishes the run on a
/// freshly restored engine at `restore_threads`.
fn run_interrupted(
    sc: &Scenario,
    threads: usize,
    stop_at: u64,
    restore_threads: usize,
) -> RunOutput {
    let (base, rotated) = schedules(sc);
    let router = CoinSprayRouter;
    let cfg = config(sc, threads);
    let probe = fresh_probe(&cfg);
    let mut eng = Engine::with_probe(cfg, &base, &router, probe);
    eng.add_flows(sc.flows.clone()).unwrap();
    eng.set_fault_plan(plan(sc));
    while !eng.is_drained() && eng.now_slot() < stop_at {
        maybe_reconfigure(&mut eng, sc, &rotated);
        eng.step().unwrap();
    }

    let mut snap = eng.checkpoint();
    let (collector, recorder) = eng.probe();
    snap.attach_blob("trace", collector.to_bytes());
    snap.attach_blob("flight", recorder.to_bytes());
    drop(eng);

    let mut store = CheckpointStore::with_fs("ckpt", CheckpointFaultFs::new(), 2);
    store.write(&snap).unwrap();
    let out = store.load_latest().unwrap();
    assert!(out.skipped.is_empty(), "clean write reported corruption");
    let mut snap = out.snapshot;
    snap.set_engine_threads(restore_threads);

    let collector = FlowTraceCollector::from_bytes(snap.blob("trace").unwrap()).unwrap();
    let recorder = FlightRecorder::from_bytes(snap.blob("flight").unwrap()).unwrap();
    // A reconfiguration strictly before the checkpoint is already part
    // of the snapshotted state; the caller re-supplies the schedule that
    // was installed at checkpoint time.
    let current = match sc.reconfigure_at {
        Some(t) if snap.slot() > t => &rotated,
        _ => &base,
    };
    let mut eng =
        Engine::restore_with_probe(&snap, current, &router, (collector, recorder)).unwrap();
    drive_to_end(&mut eng, sc, &rotated);
    finish(eng)
}

/// The seeded sweep: uninterrupted at `threads` must equal interrupted
/// runs at every (run, restore) thread pairing over 1 and 4 threads and
/// at several checkpoint slots.
fn assert_resume_equivalence(sc: &Scenario, stops: &[u64]) {
    let reference = run_uninterrupted(sc, 1);
    assert!(
        !reference.spans.is_empty(),
        "scenario traced nothing — not a useful equivalence check: {sc:?}"
    );
    assert_eq!(
        reference,
        run_uninterrupted(sc, 4),
        "uninterrupted runs diverged across thread counts on {sc:?}"
    );
    for &stop_at in stops {
        for (threads, restore_threads) in [(1, 1), (1, 4), (4, 1), (4, 4)] {
            let resumed = run_interrupted(sc, threads, stop_at, restore_threads);
            assert_eq!(
                reference, resumed,
                "restore at slot {stop_at} ({threads} -> {restore_threads} threads) \
                 diverged on {sc:?}"
            );
        }
    }
}

#[test]
fn plain_run_resumes_identically() {
    assert_resume_equivalence(
        &Scenario {
            n: 8,
            uplinks: 2,
            seed: 3,
            trace_one_in: 1,
            flows: seeded_flows(8, 3, 80),
            outages: vec![],
            storm: false,
            reconfigure_at: None,
        },
        &[1, 4, 11],
    );
}

#[test]
fn faultstorm_run_resumes_identically() {
    // The storm keeps failure state, repair calendars, and fault-plan
    // cursors live across the checkpoint; scripted outages overlap it.
    assert_resume_equivalence(
        &Scenario {
            n: 10,
            uplinks: 2,
            seed: 6,
            trace_one_in: 1,
            flows: seeded_flows(10, 6, 100),
            outages: vec![(4, 7, 100, 2_000), (5, 2, 400, 1_500)],
            storm: true,
            reconfigure_at: None,
        },
        &[2, 8],
    );
}

#[test]
fn midrun_reconfiguration_resumes_identically() {
    // Checkpoint slots straddle the install_schedule at slot 6: stop at
    // 3 restores onto the base schedule and replays the swap, stop at
    // 10 restores directly onto the rotated schedule.
    assert_resume_equivalence(
        &Scenario {
            n: 8,
            uplinks: 1,
            seed: 9,
            trace_one_in: 1,
            flows: seeded_flows(8, 9, 90),
            outages: vec![(0, 3, 200, 1_800)],
            storm: false,
            reconfigure_at: Some(6),
        },
        &[3, 10],
    );
}

/// A single corrupted byte anywhere in the newest generation must be
/// detected (CRC-64 catches all one-byte errors), skipped with a
/// structured reason, and fall back to the older valid generation —
/// never a panic, never a silently-wrong snapshot.
#[test]
fn corrupt_byte_at_every_offset_falls_back_without_panicking() {
    let (older, newer) = checkpoint_pair();
    let len = {
        let mut probe = CheckpointStore::with_fs("ckpt", CheckpointFaultFs::new(), 2);
        let (_, bytes) = probe.write(&newer).unwrap();
        bytes
    };
    for offset in 0..len {
        let mut store = CheckpointStore::with_fs("ckpt", CheckpointFaultFs::new(), 2);
        store.write(&older).unwrap();
        store.fs_mut().arm(WriteFault::CorruptByte { offset });
        store.write(&newer).unwrap();
        let out = store
            .load_latest()
            .unwrap_or_else(|e| panic!("offset {offset}: no valid generation: {e}"));
        assert_eq!(
            out.snapshot.slot(),
            older.slot(),
            "offset {offset}: corrupt newest generation was not skipped"
        );
        assert_eq!(out.skipped.len(), 1, "offset {offset}");
    }
}

/// A write torn at any length (power loss mid-`write`) must likewise
/// fall back to the previous generation.
#[test]
fn torn_write_at_every_length_falls_back_without_panicking() {
    let (older, newer) = checkpoint_pair();
    let len = {
        let mut probe = CheckpointStore::with_fs("ckpt", CheckpointFaultFs::new(), 2);
        let (_, bytes) = probe.write(&newer).unwrap();
        bytes
    };
    for keep in 0..len {
        let mut store = CheckpointStore::with_fs("ckpt", CheckpointFaultFs::new(), 2);
        store.write(&older).unwrap();
        store.fs_mut().arm(WriteFault::Torn { keep });
        // The crash is reported at write time; the torn prefix is on
        // "disk" regardless, and the loader must still skip past it.
        assert!(store.write(&newer).is_err(), "keep {keep}");
        let out = store
            .load_latest()
            .unwrap_or_else(|e| panic!("keep {keep}: no valid generation: {e}"));
        assert_eq!(
            out.snapshot.slot(),
            older.slot(),
            "keep {keep}: torn newest generation was not skipped"
        );
    }
}

/// A failed atomic rename leaves no new generation at all; the store
/// reports the error on write and still serves the older snapshot.
#[test]
fn failed_rename_keeps_the_older_generation() {
    let (older, newer) = checkpoint_pair();
    let mut store = CheckpointStore::with_fs("ckpt", CheckpointFaultFs::new(), 2);
    store.write(&older).unwrap();
    store.fs_mut().arm(WriteFault::FailRename);
    assert!(store.write(&newer).is_err(), "rename fault not surfaced");
    let out = store.load_latest().unwrap();
    assert_eq!(out.snapshot.slot(), older.slot());
    assert!(out.skipped.is_empty());
}

/// Two real snapshots of the golden scenario a few slots apart.
fn checkpoint_pair() -> (Snapshot, Snapshot) {
    let sc = golden_scenario();
    let (base, rotated) = schedules(&sc);
    let router = CoinSprayRouter;
    let cfg = config(&sc, 1);
    let probe = fresh_probe(&cfg);
    let mut eng = Engine::with_probe(cfg, &base, &router, probe);
    eng.add_flows(sc.flows.clone()).unwrap();
    eng.set_fault_plan(plan(&sc));
    while eng.now_slot() < 4 {
        maybe_reconfigure(&mut eng, &sc, &rotated);
        eng.step().unwrap();
    }
    let older = snapshot_with_blobs(&eng);
    while eng.now_slot() < 8 {
        maybe_reconfigure(&mut eng, &sc, &rotated);
        eng.step().unwrap();
    }
    (older, snapshot_with_blobs(&eng))
}

fn snapshot_with_blobs(eng: &Engine<'_, Obs>) -> Snapshot {
    let mut snap = eng.checkpoint();
    let (collector, recorder) = eng.probe();
    snap.attach_blob("trace", collector.to_bytes());
    snap.attach_blob("flight", recorder.to_bytes());
    snap
}

fn golden_scenario() -> Scenario {
    Scenario {
        n: 6,
        uplinks: 2,
        seed: 42,
        trace_one_in: 2,
        flows: seeded_flows(6, 42, 24),
        outages: vec![(1, 4, 200, 1_200)],
        storm: false,
        reconfigure_at: None,
    }
}

/// The golden checkpoint: the serialized snapshot of the golden
/// scenario at slot 8 is pinned byte-for-byte, so the on-disk format
/// cannot drift without regenerating the fixture on purpose, and the
/// committed bytes must still restore and finish to the uninterrupted
/// outcome. Regenerate with:
/// `cargo test -p sorn-sim --test checkpoint_equivalence -- --ignored regenerate`
#[test]
fn golden_checkpoint_bytes_restore_and_match() {
    let (_, snap) = checkpoint_pair();
    let golden: &[u8] = include_bytes!("golden/checkpoint_small.sorn");
    assert_eq!(
        snap.to_bytes(),
        golden,
        "checkpoint byte format drifted from the committed golden fixture"
    );

    let sc = golden_scenario();
    let (base, rotated) = schedules(&sc);
    let router = CoinSprayRouter;
    let snap = Snapshot::from_bytes(golden).unwrap();
    let collector = FlowTraceCollector::from_bytes(snap.blob("trace").unwrap()).unwrap();
    let recorder = FlightRecorder::from_bytes(snap.blob("flight").unwrap()).unwrap();
    let mut eng = Engine::restore_with_probe(&snap, &base, &router, (collector, recorder)).unwrap();
    drive_to_end(&mut eng, &sc, &rotated);
    assert_eq!(finish(eng), run_uninterrupted(&sc, 1));
}

/// Not a test: rewrites the golden fixture from the current tree.
#[test]
#[ignore = "fixture regenerator, run explicitly"]
fn regenerate_golden_fixtures() {
    let (_, snap) = checkpoint_pair();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("checkpoint_small.sorn"), snap.to_bytes()).unwrap();
}

proptest! {
    /// Any scenario this strategy can draw — random workloads, outages,
    /// an optional storm, an optional mid-run reconfiguration, and any
    /// checkpoint slot / thread pairing — restores to the uninterrupted
    /// outcome exactly.
    #[test]
    fn restore_equals_uninterrupted_for_random_scenarios(
        n in 4usize..12,
        uplinks in 1usize..3,
        seed in 0u64..500,
        one_in in 1u64..4,
        flow_count in 10usize..90,
        storm in proptest::bool::ANY,
        reconfigure in proptest::option::of(1u64..12),
        stop_at in 1u64..15,
        threads in 1usize..5,
        restore_threads in 1usize..5,
        outages in proptest::collection::vec(
            (0u32..12, 0u32..12, 0u64..2_000, 1u64..3_000), 0..3),
    ) {
        let sc = Scenario {
            n,
            uplinks,
            seed,
            trace_one_in: one_in,
            flows: seeded_flows(n, seed, flow_count),
            outages: outages
                .into_iter()
                .filter(|&(s, d, _, _)| s != d && (s as usize) < n && (d as usize) < n)
                .map(|(s, d, from, len)| (s, d, from, from + len))
                .collect(),
            storm,
            reconfigure_at: reconfigure,
        };
        prop_assert_eq!(
            run_interrupted(&sc, threads, stop_at, restore_threads),
            run_uninterrupted(&sc, threads)
        );
    }
}
