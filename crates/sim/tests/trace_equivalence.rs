//! Serial/parallel equivalence for the observability surface: traced
//! flow spans and flight-recorder contents must be byte-identical at
//! every `SimConfig::engine_threads` setting.
//!
//! `par_equivalence.rs` checks the *metrics* side of the determinism
//! argument (DESIGN.md §10); this file checks the *event* side added in
//! §11: per-shard hop events merged in canonical node order, flow
//! sampling keyed off a pure hash that never consumes routing RNG, and
//! recorder entries appended only from the merged (deterministic)
//! engine stream. Each scenario renders [`FlowTraceCollector`] spans
//! and [`FlightRecorder`] JSONL at 1, 2, 3, and 4 threads and compares
//! the bytes, plus one golden scenario pinned against a committed
//! fixture so the byte format itself cannot drift silently.

use proptest::prelude::*;
use sorn_sim::{Cell, ClassId, Engine, Flow, FlowId, NodeRng, RouteDecision, Router, SimConfig};
use sorn_telemetry::{FlightRecorder, FlowTraceCollector, DEFAULT_CAPACITY};
use sorn_topology::builders::round_robin;
use sorn_topology::NodeId;

/// Same two-hop spray router as `par_equivalence.rs`: consumes the
/// per-node RNG stream and exercises both queue kinds, so any decision
/// reordering shows up in the traced spans.
struct CoinSprayRouter;

const SPRAY: ClassId = ClassId(0);

impl Router for CoinSprayRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, rng: &mut NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if cell.tag == 0 {
            cell.tag = 1;
            if rng.gen_range(2) == 0 {
                return RouteDecision::ToClass(SPRAY);
            }
        }
        RouteDecision::ToNode(cell.dst)
    }

    fn class_admits(&self, _class: ClassId, cell: &Cell, from: NodeId, to: NodeId) -> bool {
        to != from && to != cell.src
    }

    fn classes(&self) -> &[ClassId] {
        std::slice::from_ref(&SPRAY)
    }

    fn max_hops(&self) -> u8 {
        4
    }

    fn name(&self) -> &str {
        "coin-spray"
    }
}

/// One fully-specified scenario; everything a traced run depends on.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    uplinks: usize,
    seed: u64,
    /// `Engine` samples one flow in this many for tracing (1 = all).
    trace_one_in: u64,
    flows: Vec<Flow>,
    /// `(src, dst, from_ns, until_ns)` link outages.
    outages: Vec<(u32, u32, u64, u64)>,
}

/// Seeded workload drawn from the simulator's own counter-based stream
/// (same generator as `par_equivalence.rs`).
fn seeded_flows(n: usize, seed: u64, count: usize) -> Vec<Flow> {
    let mut rng = NodeRng::for_node(seed, u32::MAX);
    (0..count)
        .map(|i| {
            let src = rng.gen_range(n as u64) as u32;
            let mut dst = rng.gen_range(n as u64) as u32;
            if dst == src {
                dst = (dst + 1) % n as u32;
            }
            Flow {
                id: FlowId(i as u64),
                src: NodeId(src),
                dst: NodeId(dst),
                size_bytes: (1 + rng.gen_range(6)) * 1250,
                arrival_ns: rng.gen_range(2_000),
            }
        })
        .collect()
}

/// Runs the scenario at the given thread count and returns the rendered
/// trace spans and the flight-recorder JSONL dump, byte for byte.
fn run_traced(sc: &Scenario, threads: usize) -> (String, String) {
    let sched = round_robin(sc.n).unwrap();
    let router = CoinSprayRouter;
    let cfg = SimConfig {
        uplinks: sc.uplinks,
        seed: sc.seed,
        engine_threads: threads,
        trace_one_in: sc.trace_one_in,
        ..SimConfig::default()
    };
    let probe = (
        FlowTraceCollector::new(cfg.slot_ns),
        FlightRecorder::new(DEFAULT_CAPACITY),
    );
    let mut eng = Engine::with_probe(cfg, &sched, &router, probe);
    eng.add_flows(sc.flows.clone()).unwrap();
    let mut plan = sorn_sim::FaultPlan::new();
    for &(s, d, from, until) in &sc.outages {
        plan.link_outage(NodeId(s), NodeId(d), from, until);
    }
    eng.set_fault_plan(plan);
    eng.run_until_drained(100_000).unwrap();
    let (collector, recorder) = eng.finish();
    (collector.render_all(), recorder.dump_string())
}

/// Asserts byte-identical trace + recorder output at 1..=4 threads and
/// returns the serial rendering for golden checks.
fn assert_trace_invariant(sc: &Scenario) -> (String, String) {
    let serial = run_traced(sc, 1);
    assert!(
        !serial.0.is_empty(),
        "scenario traced nothing — not a useful equivalence check: {sc:?}"
    );
    for threads in [2, 3, 4] {
        let par = run_traced(sc, threads);
        assert_eq!(
            serial, par,
            "threads={threads} trace/recorder bytes diverged on {sc:?}"
        );
    }
    serial
}

#[test]
fn traced_spans_match_at_any_thread_count() {
    for (n, uplinks, flows, seed, one_in) in [
        (4, 1, 30, 1u64, 1u64),
        (8, 2, 80, 2, 2),
        (12, 3, 150, 3, 1),
        (16, 4, 250, 4, 4),
    ] {
        assert_trace_invariant(&Scenario {
            n,
            uplinks,
            seed,
            trace_one_in: one_in,
            flows: seeded_flows(n, seed, flows),
            outages: vec![],
        });
    }
}

#[test]
fn faulted_traced_runs_match_at_any_thread_count() {
    // Outages make the recorder non-trivial: fault events and drop
    // spikes must land in the ring in the same order at every thread
    // count, not just the hop spans.
    assert_trace_invariant(&Scenario {
        n: 10,
        uplinks: 2,
        seed: 6,
        trace_one_in: 1,
        flows: seeded_flows(10, 6, 120),
        outages: vec![(0, 1, 100, 2_000), (2, 5, 400, 1_500), (7, 3, 0, 3_000)],
    });
}

/// The golden scenario: pinned bytes so the span format (and sampling
/// keying) cannot drift without the fixture being regenerated on
/// purpose. Regenerate with:
/// `cargo test -p sorn-sim --test trace_equivalence -- --ignored regenerate`
#[test]
fn golden_trace_bytes_are_stable() {
    let sc = golden_scenario();
    let (spans, flight) = assert_trace_invariant(&sc);
    assert_eq!(
        spans,
        include_str!("golden/trace_small_spans.txt"),
        "traced span bytes drifted from the committed golden fixture"
    );
    assert_eq!(
        flight,
        include_str!("golden/trace_small_flight.jsonl"),
        "flight-recorder bytes drifted from the committed golden fixture"
    );
}

fn golden_scenario() -> Scenario {
    Scenario {
        n: 6,
        uplinks: 2,
        seed: 42,
        trace_one_in: 2,
        flows: seeded_flows(6, 42, 24),
        outages: vec![(1, 4, 200, 1_200)],
    }
}

/// Not a test: rewrites the golden fixtures from the current tree.
#[test]
#[ignore = "fixture regenerator, run explicitly"]
fn regenerate_golden_fixtures() {
    let (spans, flight) = run_traced(&golden_scenario(), 1);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("trace_small_spans.txt"), spans).unwrap();
    std::fs::write(dir.join("trace_small_flight.jsonl"), flight).unwrap();
}

proptest! {
    /// Any scenario this strategy can draw produces byte-identical
    /// traced spans and flight-recorder dumps at every thread count.
    #[test]
    fn serial_equals_parallel_trace_bytes_for_random_scenarios(
        n in 4usize..14,
        uplinks in 1usize..4,
        seed in 0u64..1_000,
        one_in in 1u64..5,
        flow_count in 10usize..120,
        outages in proptest::collection::vec(
            (0u32..14, 0u32..14, 0u64..2_000, 1u64..3_000), 0..4),
        threads in 2usize..6,
    ) {
        let sc = Scenario {
            n,
            uplinks,
            seed,
            trace_one_in: one_in,
            flows: seeded_flows(n, seed, flow_count),
            outages: outages
                .into_iter()
                .filter(|&(s, d, _, _)| s != d && (s as usize) < n && (d as usize) < n)
                .map(|(s, d, from, len)| (s, d, from, from + len))
                .collect(),
        };
        prop_assert_eq!(run_traced(&sc, 1), run_traced(&sc, threads));
    }
}
