//! Property-based tests for the simulator engine: conservation,
//! determinism, latency floors.

use proptest::prelude::*;
use sorn_sim::{DirectRouter, Engine, Flow, FlowId, SimConfig};
use sorn_topology::builders::round_robin;
use sorn_topology::NodeId;

fn make_flows(n: usize, specs: &[(u32, u32, u64, u64)]) -> Vec<Flow> {
    specs
        .iter()
        .enumerate()
        .filter(|(_, (s, d, _, _))| (*s as usize) < n && (*d as usize) < n && s != d)
        .map(|(i, &(s, d, bytes, at))| Flow {
            id: FlowId(i as u64),
            src: NodeId(s),
            dst: NodeId(d),
            size_bytes: bytes.max(1),
            arrival_ns: at,
        })
        .collect()
}

proptest! {
    /// Cell conservation: after draining, delivered cells equal injected
    /// cells, and every flow completed exactly once.
    #[test]
    fn cells_are_conserved(
        n in 3usize..10,
        specs in proptest::collection::vec((0u32..10, 0u32..10, 1u64..20_000, 0u64..5_000), 1..24),
    ) {
        let sched = round_robin(n).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows = make_flows(n, &specs);
        let total_cells: u64 = flows.iter().map(|f| f.cell_count(1250)).sum();
        let count = flows.len();
        eng.add_flows(flows).unwrap();
        prop_assert!(eng.run_until_drained(5_000_000).unwrap());
        let m = eng.metrics();
        prop_assert_eq!(m.injected_cells, total_cells);
        prop_assert_eq!(m.delivered_cells, total_cells);
        prop_assert_eq!(m.flows.len(), count);
        prop_assert_eq!(m.transmissions, total_cells); // direct: one hop per cell
        prop_assert_eq!(eng.total_queued(), 0);
    }

    /// FCT can never beat the physical floor: at least one slot plus
    /// propagation after arrival.
    #[test]
    fn fct_respects_physical_floor(
        n in 3usize..8,
        specs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..5_000, 0u64..2_000), 1..12),
    ) {
        let sched = round_robin(n).unwrap();
        let router = DirectRouter;
        let cfg = SimConfig::default();
        let mut eng = Engine::new(cfg, &sched, &router);
        let flows = make_flows(n, &specs);
        eng.add_flows(flows).unwrap();
        prop_assert!(eng.run_until_drained(5_000_000).unwrap());
        for f in &eng.metrics().flows {
            prop_assert!(
                f.fct_ns() >= cfg.slot_ns + cfg.propagation_ns,
                "flow {:?} finished in {} ns",
                f.id, f.fct_ns()
            );
        }
    }

    /// Identical seeds and inputs give identical outcomes; the RNG seed
    /// does not change direct-routing results at all.
    #[test]
    fn runs_are_deterministic(
        n in 3usize..8,
        specs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..5_000, 0u64..2_000), 1..12),
        seed in 0u64..500,
    ) {
        let sched = round_robin(n).unwrap();
        let router = DirectRouter;
        let flows = make_flows(n, &specs);
        let run = |seed: u64| {
            let cfg = SimConfig { seed, ..SimConfig::default() };
            let mut eng = Engine::new(cfg, &sched, &router);
            eng.add_flows(flows.clone()).unwrap();
            eng.run_until_drained(5_000_000).unwrap();
            (
                eng.metrics().delivered_cells,
                eng.metrics().cell_latency_sum_ns,
                eng.metrics().flows.iter().map(|f| f.fct_ns()).sum::<u64>(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
        prop_assert_eq!(run(seed), run(seed.wrapping_add(1)));
    }

    /// Throughput accounting: delivered bytes equal payload times cells,
    /// and utilization never exceeds 1.
    #[test]
    fn metric_accounting_is_consistent(
        n in 3usize..8,
        specs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..9_000, 0u64..1_000), 1..10),
    ) {
        let sched = round_robin(n).unwrap();
        let router = DirectRouter;
        let cfg = SimConfig::default();
        let mut eng = Engine::new(cfg, &sched, &router);
        eng.add_flows(make_flows(n, &specs)).unwrap();
        prop_assert!(eng.run_until_drained(5_000_000).unwrap());
        let m = eng.metrics();
        prop_assert_eq!(m.delivered_bytes, m.delivered_cells * cfg.cell_bytes as u64);
        let u = m.circuit_utilization();
        prop_assert!((0.0..=1.0).contains(&u));
        if m.delivered_cells > 0 {
            let f = m.delivery_fraction();
            prop_assert!((f - 1.0).abs() < 1e-12); // direct: every hop is final
        }
    }
}
