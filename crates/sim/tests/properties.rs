//! Property-based tests for the simulator engine: conservation,
//! determinism, latency floors, and the failure model.

use proptest::prelude::*;
use sorn_sim::{
    DirectRouter, Engine, FailureSet, FaultAction, FaultPlan, FaultStorm, Flow, FlowId, SimConfig,
};
use sorn_topology::builders::round_robin;
use sorn_topology::NodeId;

fn make_flows(n: usize, specs: &[(u32, u32, u64, u64)]) -> Vec<Flow> {
    specs
        .iter()
        .enumerate()
        .filter(|(_, (s, d, _, _))| (*s as usize) < n && (*d as usize) < n && s != d)
        .map(|(i, &(s, d, bytes, at))| Flow {
            id: FlowId(i as u64),
            src: NodeId(s),
            dst: NodeId(d),
            size_bytes: bytes.max(1),
            arrival_ns: at,
        })
        .collect()
}

proptest! {
    /// Cell conservation: after draining, delivered cells equal injected
    /// cells, and every flow completed exactly once.
    #[test]
    fn cells_are_conserved(
        n in 3usize..10,
        specs in proptest::collection::vec((0u32..10, 0u32..10, 1u64..20_000, 0u64..5_000), 1..24),
    ) {
        let sched = round_robin(n).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows = make_flows(n, &specs);
        let total_cells: u64 = flows.iter().map(|f| f.cell_count(1250)).sum();
        let count = flows.len();
        eng.add_flows(flows).unwrap();
        prop_assert!(eng.run_until_drained(5_000_000).unwrap());
        let m = eng.metrics();
        prop_assert_eq!(m.injected_cells, total_cells);
        prop_assert_eq!(m.delivered_cells, total_cells);
        prop_assert_eq!(m.flows.len(), count);
        prop_assert_eq!(m.transmissions, total_cells); // direct: one hop per cell
        prop_assert_eq!(eng.total_queued(), 0);
    }

    /// FCT can never beat the physical floor: at least one slot plus
    /// propagation after arrival.
    #[test]
    fn fct_respects_physical_floor(
        n in 3usize..8,
        specs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..5_000, 0u64..2_000), 1..12),
    ) {
        let sched = round_robin(n).unwrap();
        let router = DirectRouter;
        let cfg = SimConfig::default();
        let mut eng = Engine::new(cfg, &sched, &router);
        let flows = make_flows(n, &specs);
        eng.add_flows(flows).unwrap();
        prop_assert!(eng.run_until_drained(5_000_000).unwrap());
        for f in &eng.metrics().flows {
            prop_assert!(
                f.fct_ns() >= cfg.slot_ns + cfg.propagation_ns,
                "flow {:?} finished in {} ns",
                f.id, f.fct_ns()
            );
        }
    }

    /// Identical seeds and inputs give identical outcomes; the RNG seed
    /// does not change direct-routing results at all.
    #[test]
    fn runs_are_deterministic(
        n in 3usize..8,
        specs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..5_000, 0u64..2_000), 1..12),
        seed in 0u64..500,
    ) {
        let sched = round_robin(n).unwrap();
        let router = DirectRouter;
        let flows = make_flows(n, &specs);
        let run = |seed: u64| {
            let cfg = SimConfig { seed, ..SimConfig::default() };
            let mut eng = Engine::new(cfg, &sched, &router);
            eng.add_flows(flows.clone()).unwrap();
            eng.run_until_drained(5_000_000).unwrap();
            (
                eng.metrics().delivered_cells,
                eng.metrics().cell_latency_sum_ns,
                eng.metrics().flows.iter().map(|f| f.fct_ns()).sum::<u64>(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
        prop_assert_eq!(run(seed), run(seed.wrapping_add(1)));
    }

    /// Failing then restoring the same elements is the identity on a
    /// failure set, regardless of interleaving with other failures.
    #[test]
    fn fail_then_restore_is_identity(
        nodes in proptest::collection::vec(0u32..16, 0..6),
        links in proptest::collection::vec((0u32..16, 0u32..16), 0..8),
        background in proptest::collection::vec((0u32..16, 0u32..16), 0..4),
    ) {
        let mut f = FailureSet::none();
        for &(s, d) in &background {
            f.fail_link(NodeId(s), NodeId(d));
        }
        let before = f.clone();
        for &n in &nodes {
            f.fail_node(NodeId(n));
        }
        for &(s, d) in &links {
            f.fail_link(NodeId(s), NodeId(d));
        }
        for &n in &nodes {
            f.restore_node(NodeId(n));
        }
        for &(s, d) in &links {
            f.restore_link(NodeId(s), NodeId(d));
        }
        prop_assert_eq!(f, before);
    }

    /// Restores only ever bring circuits up: whatever was up before a
    /// batch of restores is still up afterwards.
    #[test]
    fn circuit_up_is_monotone_under_restores(
        fails_nodes in proptest::collection::vec(0u32..12, 0..5),
        fails_links in proptest::collection::vec((0u32..12, 0u32..12), 0..8),
        restores_nodes in proptest::collection::vec(0u32..12, 0..5),
        restores_links in proptest::collection::vec((0u32..12, 0u32..12), 0..8),
    ) {
        let mut f = FailureSet::none();
        for &n in &fails_nodes {
            f.fail_node(NodeId(n));
        }
        for &(s, d) in &fails_links {
            f.fail_link(NodeId(s), NodeId(d));
        }
        let before = f.clone();
        for &n in &restores_nodes {
            f.restore_node(NodeId(n));
        }
        for &(s, d) in &restores_links {
            f.restore_link(NodeId(s), NodeId(d));
        }
        for s in 0..12u32 {
            for d in 0..12u32 {
                if before.circuit_up(NodeId(s), NodeId(d)) {
                    prop_assert!(
                        f.circuit_up(NodeId(s), NodeId(d)),
                        "restore took circuit {s}->{d} down"
                    );
                }
            }
        }
    }

    /// Storm generation is a pure function of its config: same seed,
    /// same script; and the script is well-formed (time-sorted, fails
    /// within the horizon, every fail eventually restored).
    #[test]
    fn storms_are_deterministic_and_well_formed(
        seed in 0u64..1000,
        horizon in 50_000u64..500_000,
        mtbf in 10_000.0f64..200_000.0,
        mttr in 1_000.0f64..50_000.0,
    ) {
        let cfg = FaultStorm {
            seed,
            horizon_ns: horizon,
            mtbf_ns: mtbf,
            mttr_ns: mttr,
            links: vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
            nodes: vec![NodeId(5)],
        };
        let a = FaultPlan::storm(&cfg);
        let b = FaultPlan::storm(&cfg);
        prop_assert_eq!(a.events(), b.events());
        let mut last = 0u64;
        let mut balance = 0i64;
        for e in a.events() {
            prop_assert!(e.at_ns >= last, "events must be time-sorted");
            last = e.at_ns;
            match e.action {
                FaultAction::Fail => {
                    prop_assert!(e.at_ns < horizon, "fail at {} past horizon {horizon}", e.at_ns);
                    balance += 1;
                }
                FaultAction::Restore => balance -= 1,
            }
        }
        prop_assert_eq!(balance, 0, "every fail must pair with a restore");
        // A fully played-out storm leaves the network healthy.
        let mut f = FailureSet::none();
        for e in a.events() {
            e.apply(&mut f);
        }
        prop_assert!(f.is_empty());
    }

    /// Cell accounting holds under arbitrary fault scripts (injected =
    /// delivered + dropped + in flight + queued), stranded cells are a
    /// subset of the queued ones, and permanently dead elements leave
    /// the survivors stranded rather than lost.
    #[test]
    fn accounting_holds_under_fault_plans(
        n in 4usize..8,
        specs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..8_000, 0u64..2_000), 1..10),
        outages in proptest::collection::vec((0u32..8, 0u32..8, 0u64..4_000, 0u64..4_000), 0..6),
        kill_node in proptest::option::of(0u32..8),
    ) {
        let sched = round_robin(n).unwrap();
        let router = DirectRouter;
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows(make_flows(n, &specs)).unwrap();
        let mut plan = FaultPlan::new();
        for &(s, d, at, len) in &outages {
            if s != d && (s as usize) < n && (d as usize) < n {
                plan.link_outage(NodeId(s), NodeId(d), at, at + len.max(1));
            }
        }
        if let Some(v) = kill_node {
            if (v as usize) < n {
                // Permanent: never restored, so the run may not drain.
                plan.fail_node_at(1_000, NodeId(v));
            }
        }
        eng.set_fault_plan(plan);
        let drained = eng.run_until_drained(5_000).unwrap();
        let m = eng.metrics();
        let queued = eng.total_queued() as u64;
        let stranded = eng.count_stranded();
        prop_assert_eq!(
            m.injected_cells,
            m.delivered_cells + m.dropped_cells + eng.inflight_cells() as u64 + queued,
            "cells leaked or were double-counted"
        );
        prop_assert!(stranded <= queued, "stranded cells must be queued cells");
        if drained {
            prop_assert_eq!(queued, 0);
            prop_assert_eq!(stranded, 0);
        }
    }

    /// Throughput accounting: delivered bytes equal payload times cells,
    /// and utilization never exceeds 1.
    #[test]
    fn metric_accounting_is_consistent(
        n in 3usize..8,
        specs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..9_000, 0u64..1_000), 1..10),
    ) {
        let sched = round_robin(n).unwrap();
        let router = DirectRouter;
        let cfg = SimConfig::default();
        let mut eng = Engine::new(cfg, &sched, &router);
        eng.add_flows(make_flows(n, &specs)).unwrap();
        prop_assert!(eng.run_until_drained(5_000_000).unwrap());
        let m = eng.metrics();
        prop_assert_eq!(m.delivered_bytes, m.delivered_cells * cfg.cell_bytes as u64);
        let u = m.circuit_utilization();
        prop_assert!((0.0..=1.0).contains(&u));
        if m.delivered_cells > 0 {
            let f = m.delivery_fraction();
            prop_assert!((f - 1.0).abs() < 1e-12); // direct: every hop is final
        }
    }
}
