//! Criterion microbenchmarks for the engine's per-slot hot path.
//!
//! Three costs dominate a slot (see `results/BENCH_ci.json` spans):
//! per-cell routing decisions, the transmit walk over `uplinks × nodes`
//! circuits, and the in-flight calendar's push/pop churn. Each gets an
//! isolated bench here so regressions show up attributed, not smeared
//! across an end-to-end run.
//!
//! Run with `cargo bench -p sorn-sim`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sorn_sim::bench_internals::SlotCalendar;
use sorn_sim::{Cell, ClassId, Engine, Flow, FlowId, NodeRng, RouteDecision, Router, SimConfig};
use sorn_topology::builders::round_robin;
use sorn_topology::NodeId;
use std::hint::black_box;

/// A VLB-shaped router whose `decide` consumes the node RNG stream —
/// the realistic per-cell decision cost (branchy, one RNG draw on the
/// spray hop), without pulling the routing crate into this one.
struct SprayBench {
    n: u64,
}

impl Router for SprayBench {
    fn decide(&self, node: NodeId, cell: &mut Cell, rng: &mut NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if cell.tag == 0 {
            cell.tag = 1;
            let via = NodeId(rng.gen_range(self.n) as u32);
            if via != node && via != cell.dst {
                return RouteDecision::ToNode(via);
            }
        }
        RouteDecision::ToNode(cell.dst)
    }

    fn class_admits(&self, _class: ClassId, _cell: &Cell, _from: NodeId, _to: NodeId) -> bool {
        false
    }

    fn classes(&self) -> &[ClassId] {
        &[]
    }

    fn max_hops(&self) -> u8 {
        4
    }

    fn name(&self) -> &str {
        "spray-bench"
    }
}

fn bench_cell(seq: u64) -> Cell {
    Cell {
        flow: FlowId(0),
        seq,
        src: NodeId(0),
        dst: NodeId((seq % 63 + 1) as u32),
        injected_ns: 0,
        hops: 0,
        tag: 0,
    }
}

/// Per-cell routing decision rate: the `route_cell` kernel minus queue
/// bookkeeping. One RNG draw + branchy decision per cell.
fn bench_route_cell(c: &mut Criterion) {
    let router = SprayBench { n: 64 };
    let mut g = c.benchmark_group("route_cell");
    const CELLS: u64 = 10_000;
    g.throughput(Throughput::Elements(CELLS));
    g.bench_function("spray_decide", |b| {
        let mut rng = NodeRng::for_node(1, 0);
        b.iter(|| {
            let mut delivered = 0u64;
            for seq in 0..CELLS {
                let mut cell = bench_cell(seq);
                match router.decide(NodeId(0), black_box(&mut cell), &mut rng) {
                    RouteDecision::Deliver => delivered += 1,
                    other => {
                        black_box(other);
                    }
                }
            }
            delivered
        });
    });
    g.finish();
}

/// The transmit walk: a backlogged engine stepping slots, so nearly all
/// time goes to `pop_for_circuit` scans and link-matrix updates across
/// `uplinks × nodes` circuits per slot.
fn bench_transmit_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("transmit_walk");
    g.sample_size(20);
    for (n, uplinks) in [(64usize, 4usize), (128, 8)] {
        let sched = round_robin(n).unwrap();
        let router = SprayBench { n: n as u64 };
        const SLOTS: u64 = 200;
        g.throughput(Throughput::Elements(SLOTS * n as u64));
        let id = BenchmarkId::from_parameter(format!("{n}x{uplinks}"));
        g.bench_function(id, |b| {
            b.iter(|| {
                let cfg = SimConfig {
                    uplinks,
                    seed: 9,
                    ..SimConfig::default()
                };
                let mut eng = Engine::new(cfg, &sched, &router);
                // Deep standing backlog: every node sends to three peers.
                let flows: Vec<Flow> = (0..3 * n as u64)
                    .map(|i| Flow {
                        id: FlowId(i),
                        src: NodeId((i % n as u64) as u32),
                        dst: NodeId(((i * 7 + 1) % n as u64) as u32),
                        size_bytes: 32 * 1250,
                        arrival_ns: 0,
                    })
                    .filter(|f| f.src != f.dst)
                    .collect();
                eng.add_flows(flows).unwrap();
                eng.run_slots(black_box(SLOTS)).unwrap();
                eng.metrics().transmissions
            });
        });
    }
    g.finish();
}

/// SlotCalendar push/pop churn at the engine's real access pattern:
/// drain everything due, then push the slot's transmissions, advancing
/// one slot per round.
fn bench_calendar_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar_churn");
    for delay in [3u64, 6] {
        const SLOTS: u64 = 5_000;
        const PER_SLOT: u64 = 16;
        g.throughput(Throughput::Elements(SLOTS * PER_SLOT));
        g.bench_function(BenchmarkId::from_parameter(delay), |b| {
            b.iter(|| {
                let mut cal: SlotCalendar<u64> = SlotCalendar::new(delay);
                let mut drained = 0u64;
                for slot in 0..SLOTS {
                    while let Some(item) = cal.pop_due(slot) {
                        drained += black_box(item) & 1;
                    }
                    for i in 0..PER_SLOT {
                        cal.push(slot, slot * PER_SLOT + i);
                    }
                }
                drained
            });
        });
    }
    g.finish();
}

criterion_group!(
    hotpath,
    bench_route_cell,
    bench_transmit_walk,
    bench_calendar_churn
);
criterion_main!(hotpath);
