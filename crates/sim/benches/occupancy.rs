//! Criterion microbenchmarks for the warehouse-scale state layouts.
//!
//! Two representation choices drive the engine's large-fabric cost:
//! link/port occupancy (a `u64`-word bitset walked with word ops versus
//! the hash-probed set it replaced) and active-flow state (the
//! struct-of-arrays [`FlowTable`] versus the legacy
//! `HashMap<FlowId, usize>` + slab). Each is benched head-to-head at
//! several fabric sizes and fill rates so the crossover — and any
//! regression — is attributed to the structure, not an end-to-end run.
//!
//! Run with `cargo bench -p sorn-sim --bench occupancy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sorn_sim::bench_internals::FlowTable;
use sorn_sim::{Flow, FlowId};
use sorn_topology::NodeId;
use std::collections::{HashMap, HashSet};
use std::hint::black_box;

/// Deterministic SplitMix64 so both structures see identical members.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The nodes holding queued cells, at `fill` occupancy of an `n`-node
/// fabric.
fn occupied_nodes(n: usize, fill: f64, seed: u64) -> Vec<u32> {
    let mut state = seed;
    (0..n as u32)
        .filter(|_| (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64 <= fill)
        .collect()
}

/// The transmit walk the engine runs per slot, bitset form: word ops
/// find occupied nodes, empty 64-node words cost one load.
fn walk_bitset(words: &[u64]) -> u64 {
    let mut visited = 0u64;
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let v = w as u64 * 64 + bits.trailing_zeros() as u64;
            visited = visited.wrapping_add(black_box(v));
            bits &= bits - 1;
        }
    }
    visited
}

/// The same walk, hash-probe form: every node asks the set whether it
/// has queued cells (the layout the bitset replaced).
fn walk_hashset(n: usize, set: &HashSet<u32>) -> u64 {
    let mut visited = 0u64;
    for v in 0..n as u32 {
        if set.contains(&v) {
            visited = visited.wrapping_add(black_box(v as u64));
        }
    }
    visited
}

fn bench_occupancy_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("occupancy_walk");
    for &n in &[4096usize, 16384, 65536] {
        for &fill in &[0.02f64, 0.25] {
            let occupied = occupied_nodes(n, fill, 0xfeed);
            let mut words = vec![0u64; n.div_ceil(64)];
            let mut set = HashSet::with_capacity(occupied.len());
            for &v in &occupied {
                words[v as usize / 64] |= 1u64 << (v % 64);
                set.insert(v);
            }
            let label = format!("{n}n_{:02}pct", (fill * 100.0) as u32);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new("bitset", &label), &words, |b, words| {
                b.iter(|| walk_bitset(black_box(words)))
            });
            group.bench_with_input(BenchmarkId::new("hashset", &label), &set, |b, set| {
                b.iter(|| walk_hashset(n, black_box(set)))
            });
        }
    }
    group.finish();
}

/// The legacy active-flow layout: an `Option` slab behind an id map.
struct SlabFlows {
    index: HashMap<u64, usize>,
    slab: Vec<Option<(Flow, u64, u64)>>,
}

impl SlabFlows {
    fn build(flows: &[Flow], total_cells: u64) -> Self {
        let mut t = SlabFlows {
            index: HashMap::with_capacity(flows.len()),
            slab: Vec::with_capacity(flows.len()),
        };
        for f in flows {
            t.index.insert(f.id.0, t.slab.len());
            t.slab.push(Some((f.clone(), total_cells, 0)));
        }
        t
    }

    fn record_delivery(&mut self, id: FlowId) -> bool {
        let Some(&slot) = self.index.get(&id.0) else {
            return false;
        };
        let entry = self.slab[slot].as_mut().expect("indexed slot is live");
        entry.2 += 1;
        if entry.2 < entry.1 {
            return false;
        }
        self.slab[slot] = None;
        self.index.remove(&id.0);
        true
    }
}

/// The delivery stream the engine sees: `total_cells` deliveries per
/// flow, interleaved round-robin across all live flows.
fn delivery_stream(flows: &[Flow], total_cells: u64) -> Vec<FlowId> {
    let mut stream = Vec::with_capacity(flows.len() * total_cells as usize);
    for _ in 0..total_cells {
        stream.extend(flows.iter().map(|f| f.id));
    }
    stream
}

fn bench_flow_lookup(c: &mut Criterion) {
    const TOTAL_CELLS: u64 = 4;
    let mut group = c.benchmark_group("flow_delivery_lookup");
    for &live in &[1024usize, 16384] {
        let flows: Vec<Flow> = (0..live as u64)
            .map(|i| Flow {
                id: FlowId(i),
                src: NodeId((i % 64) as u32),
                dst: NodeId((i % 97) as u32),
                size_bytes: TOTAL_CELLS * 1250,
                arrival_ns: 0,
            })
            .collect();
        let stream = delivery_stream(&flows, TOTAL_CELLS);
        group.throughput(Throughput::Elements(stream.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("soa_table", live),
            &(&flows, &stream),
            |b, (flows, stream)| {
                b.iter(|| {
                    let mut t = FlowTable::new();
                    for f in flows.iter() {
                        t.insert(f, TOTAL_CELLS);
                    }
                    let mut done = 0u64;
                    for &id in stream.iter() {
                        if t.record_delivery(id, 2, 0).is_some() {
                            done += 1;
                        }
                    }
                    black_box(done)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("slab_hashmap", live),
            &(&flows, &stream),
            |b, (flows, stream)| {
                b.iter(|| {
                    let mut t = SlabFlows::build(flows, TOTAL_CELLS);
                    let mut done = 0u64;
                    for &id in stream.iter() {
                        if t.record_delivery(id) {
                            done += 1;
                        }
                    }
                    black_box(done)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_occupancy_walk, bench_flow_lookup);
criterion_main!(benches);
