//! Packet-level saturation search: the largest offered load a network
//! sustains in steady state.
//!
//! The flow-level evaluator gives exact worst-case throughput; this
//! driver measures the *achieved* packet-level counterpart. A load is
//! "sustained" when, over a measurement window following a warmup, the
//! backlog (queued + in-flight cells) stays bounded relative to the
//! arrival rate — the standard open-loop stability criterion. Bisection
//! over the load then brackets the saturation point.

use sorn_sim::{Engine, Flow, Router, SimConfig};
use sorn_topology::CircuitSchedule;

/// A source of workloads at a given offered load.
pub trait LoadedWorkload {
    /// Generates the flow list for offered load `load` (fraction of node
    /// bandwidth).
    fn flows_at(&self, load: f64) -> Vec<Flow>;
    /// Workload duration in nanoseconds.
    fn duration_ns(&self) -> u64;
}

/// Outcome of one stability probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityProbe {
    /// Offered load tested.
    pub load: f64,
    /// True when the backlog stayed bounded.
    pub stable: bool,
    /// Cells still in the system at the end of the arrival window.
    pub backlog_cells: usize,
    /// Cells delivered during the window.
    pub delivered_cells: u64,
}

/// Result of a saturation search.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationResult {
    /// Largest load measured stable.
    pub stable_load: f64,
    /// Smallest load measured unstable (`None` if every probe was
    /// stable up to the upper bound).
    pub unstable_load: Option<f64>,
    /// All probes, in evaluation order.
    pub probes: Vec<StabilityProbe>,
}

/// Probes whether `load` is sustainable on (`schedule`, `router`).
///
/// Runs the workload's full arrival window and then compares the
/// remaining backlog to `slack` times the per-slot arrival volume: a
/// stable system's backlog is O(queueing noise), an unstable one's grows
/// linearly with the window.
pub fn probe_stability(
    schedule: &CircuitSchedule,
    router: &dyn Router,
    cfg: SimConfig,
    workload: &dyn LoadedWorkload,
    load: f64,
    slack_slots: u64,
) -> StabilityProbe {
    let flows = workload.flows_at(load);
    let duration = workload.duration_ns();
    let mut eng = Engine::new(cfg, schedule, router);
    eng.add_flows(flows)
        .expect("workload within network bounds");
    let slots = duration / cfg.slot_ns;
    eng.run_slots(slots).expect("probe run");

    // Arrival volume per slot ~ load * uplinks cells; allow `slack_slots`
    // worth of backlog before declaring instability.
    let n = schedule.n() as f64;
    let per_slot = load * cfg.uplinks as f64 * n;
    let budget = (per_slot * slack_slots as f64).max(64.0);
    let backlog = eng.total_queued();
    StabilityProbe {
        load,
        stable: (backlog as f64) < budget,
        backlog_cells: backlog,
        delivered_cells: eng.metrics().delivered_cells,
    }
}

/// Bisection search for the saturation load within `[lo, hi]`.
///
/// `iterations` bisection steps after probing both endpoints; each probe
/// simulates the full workload window, so keep workloads short.
#[allow(clippy::too_many_arguments)] // an experiment driver: all knobs are real
pub fn find_saturation(
    schedule: &CircuitSchedule,
    router: &dyn Router,
    cfg: SimConfig,
    workload: &dyn LoadedWorkload,
    lo: f64,
    hi: f64,
    iterations: usize,
    slack_slots: u64,
) -> SaturationResult {
    assert!(lo > 0.0 && lo < hi && hi <= 1.0, "need 0 < lo < hi <= 1");
    let mut probes = Vec::new();
    let mut stable = lo;
    let mut unstable = None;

    let lo_probe = probe_stability(schedule, router, cfg, workload, lo, slack_slots);
    let lo_stable = lo_probe.stable;
    probes.push(lo_probe);
    if !lo_stable {
        return SaturationResult {
            stable_load: 0.0,
            unstable_load: Some(lo),
            probes,
        };
    }
    let hi_probe = probe_stability(schedule, router, cfg, workload, hi, slack_slots);
    let hi_stable = hi_probe.stable;
    probes.push(hi_probe);
    if hi_stable {
        return SaturationResult {
            stable_load: hi,
            unstable_load: None,
            probes,
        };
    }
    let mut lo = lo;
    let mut hi = hi;
    unstable.replace(hi);
    for _ in 0..iterations {
        let mid = (lo + hi) / 2.0;
        let p = probe_stability(schedule, router, cfg, workload, mid, slack_slots);
        let mid_stable = p.stable;
        probes.push(p);
        if mid_stable {
            stable = mid;
            lo = mid;
        } else {
            unstable = Some(mid);
            hi = mid;
        }
    }
    SaturationResult {
        stable_load: stable,
        unstable_load: unstable,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_routing::VlbRouter;
    use sorn_sim::FlowId;
    use sorn_topology::builders::round_robin;
    use sorn_topology::NodeId;

    /// Uniform single-cell flows at a controllable rate.
    struct UniformCells {
        n: usize,
        duration_ns: u64,
    }

    impl LoadedWorkload for UniformCells {
        fn flows_at(&self, load: f64) -> Vec<Flow> {
            // Deterministic arrivals: each node emits one cell every
            // 1/load slots, destinations round-robin.
            let slots = self.duration_ns / 100;
            let gap = (1.0 / load).max(1.0);
            let mut flows = Vec::new();
            let mut id = 0;
            for s in 0..self.n as u32 {
                let mut t = 0.0f64;
                let mut k = 1u32;
                while (t as u64) < slots {
                    let d = (s + k) % self.n as u32;
                    if d != s {
                        flows.push(Flow {
                            id: FlowId(id),
                            src: NodeId(s),
                            dst: NodeId(d),
                            size_bytes: 1250,
                            arrival_ns: (t as u64) * 100,
                        });
                        id += 1;
                    }
                    k = (k % (self.n as u32 - 1)) + 1;
                    t += gap;
                }
            }
            flows
        }
        fn duration_ns(&self) -> u64 {
            self.duration_ns
        }
    }

    #[test]
    fn vlb_saturates_near_one_half() {
        // Uniform traffic on a round robin with 2-hop VLB: theory says
        // loads below ~0.5 are stable and above are not.
        let n = 16;
        let sched = round_robin(n).unwrap();
        let router = VlbRouter::new();
        let wl = UniformCells {
            n,
            duration_ns: 400_000,
        };
        let cfg = SimConfig::default();
        let res = find_saturation(&sched, &router, cfg, &wl, 0.2, 0.9, 4, 40);
        assert!(
            res.stable_load >= 0.35 && res.stable_load <= 0.62,
            "saturation at {} (probes: {:?})",
            res.stable_load,
            res.probes
        );
        assert!(res.unstable_load.is_some());
    }

    #[test]
    fn low_load_probe_is_stable_and_high_load_is_not() {
        let n = 8;
        let sched = round_robin(n).unwrap();
        let router = VlbRouter::new();
        let wl = UniformCells {
            n,
            duration_ns: 300_000,
        };
        let cfg = SimConfig::default();
        let low = probe_stability(&sched, &router, cfg, &wl, 0.2, 40);
        assert!(low.stable, "{low:?}");
        let high = probe_stability(&sched, &router, cfg, &wl, 0.95, 40);
        assert!(!high.stable, "{high:?}");
        assert!(high.backlog_cells > low.backlog_cells);
    }
}
