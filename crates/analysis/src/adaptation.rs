//! The §5 adaptation experiment: does periodic reconfiguration pay off
//! across a macro-pattern shift, and what does an update cost?
//!
//! A workload's community structure shifts between phases. A static SORN
//! keeps its initial cliques; an adaptive SORN runs the control loop each
//! epoch. We score both with the exact flow-level throughput of their
//! installed configuration against each epoch's true demand.

use sorn_control::{ControlConfig, ControlLoop, DecisionLog, EpochOutcome};
use sorn_core::CoreError;
use sorn_routing::{evaluate, DemandMatrix, SornPaths};
use sorn_sim::Flow;
use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
use sorn_topology::{CircuitSchedule, CliqueMap, Ratio};

/// One epoch of the adaptation experiment.
#[derive(Debug, Clone)]
pub struct AdaptationEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Throughput of the static configuration against this epoch's
    /// demand.
    pub static_throughput: f64,
    /// Throughput of the adaptive configuration.
    pub adaptive_throughput: f64,
    /// Whether the control loop installed an update this epoch.
    pub updated: bool,
    /// Cells reported drained by the update (0 when none).
    pub drained_cells: u64,
    /// Modeled installation time in nanoseconds (0 when none).
    pub installation_ns: u64,
}

/// Runs the experiment: `phases` is a list of `(epochs, flows)` — each
/// phase repeats its flow pattern for that many epochs.
///
/// Both systems start from the same contiguous layout; the demand each
/// epoch is the empirical matrix of the phase's flows.
pub fn run(
    n: usize,
    initial_cliques: usize,
    q0: Ratio,
    control: ControlConfig,
    phases: &[(usize, Vec<Flow>)],
) -> Result<Vec<AdaptationEpoch>, CoreError> {
    run_with_decisions(n, initial_cliques, q0, control, phases).map(|(epochs, _)| epochs)
}

/// Like [`run`], but also returns the control loop's per-epoch
/// [`DecisionLog`] — the estimated inter-clique demand, candidate plans,
/// and installed schedule diffs behind each epoch's outcome.
pub fn run_with_decisions(
    n: usize,
    initial_cliques: usize,
    q0: Ratio,
    control: ControlConfig,
    phases: &[(usize, Vec<Flow>)],
) -> Result<(Vec<AdaptationEpoch>, DecisionLog), CoreError> {
    let static_map = CliqueMap::contiguous(n, initial_cliques);
    let static_sched = sorn_schedule(&static_map, &SornScheduleParams::with_q(q0))?;

    let mut ctl = ControlLoop::new(control, static_map.clone(), q0, static_sched.clone());

    let score = |sched: &CircuitSchedule, map: &CliqueMap, demand: &DemandMatrix| -> f64 {
        let topo = sched.logical_topology();
        let model = SornPaths::new(map.clone());
        evaluate(&topo, &model, demand)
            .map(|r| r.throughput)
            .unwrap_or(0.0)
    };

    let mut out = Vec::new();
    let mut epoch_idx = 0;
    for (epochs, flows) in phases {
        let demand = empirical_demand(flows, n)?;
        for _ in 0..*epochs {
            // The adaptive system is scored with the configuration that
            // was installed *before* observing this epoch (no lookahead).
            let adaptive_throughput = score(ctl.schedule(), ctl.cliques(), &demand);
            let static_throughput = score(&static_sched, &static_map, &demand);

            ctl.observe(flows);
            let outcome = ctl.end_epoch()?;
            let (updated, drained, install) = match outcome {
                EpochOutcome::Updated { update, .. } => {
                    (true, update.total_drained, update.installation_ns)
                }
                _ => (false, 0, 0),
            };
            out.push(AdaptationEpoch {
                epoch: epoch_idx,
                static_throughput,
                adaptive_throughput,
                updated,
                drained_cells: drained,
                installation_ns: install,
            });
            epoch_idx += 1;
        }
    }
    Ok((out, ctl.decisions().clone()))
}

/// Builds a normalized demand matrix from a flow list.
fn empirical_demand(flows: &[Flow], n: usize) -> Result<DemandMatrix, CoreError> {
    let rows = sorn_traffic::empirical_matrix(flows, n);
    DemandMatrix::from_rows(rows)
        .map_err(|e| CoreError::InvalidConfig(format!("bad empirical demand: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::FlowId;
    use sorn_topology::NodeId;

    fn flow(src: u32, dst: u32, bytes: u64) -> Flow {
        Flow {
            id: FlowId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: bytes,
            arrival_ns: 0,
        }
    }

    /// Community structure i % k with heavy intra traffic.
    fn scrambled(n: usize, k: usize) -> Vec<Flow> {
        let mut flows = Vec::new();
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s == d {
                    continue;
                }
                let w = if s as usize % k == d as usize % k {
                    20_000
                } else {
                    200
                };
                flows.push(flow(s, d, w));
            }
        }
        flows
    }

    #[test]
    fn adaptive_beats_static_after_shift() {
        let n = 16;
        let mut cfg = ControlConfig::default();
        cfg.allowed_sizes = vec![4];
        cfg.alpha = 1.0; // adopt each epoch fully: fast test convergence
        let phases = vec![(3usize, scrambled(n, 4))];
        let epochs = run(n, 4, Ratio::integer(2), cfg, &phases).unwrap();
        assert_eq!(epochs.len(), 3);
        // Epoch 0: both systems are misconfigured for the scrambled
        // pattern (equal scores). After the first update, the adaptive
        // system pulls ahead.
        let last = epochs.last().unwrap();
        assert!(
            last.adaptive_throughput > last.static_throughput + 0.05,
            "adaptive {} vs static {}",
            last.adaptive_throughput,
            last.static_throughput
        );
        assert!(epochs.iter().any(|e| e.updated));
    }

    #[test]
    fn update_costs_are_reported() {
        let n = 16;
        let mut cfg = ControlConfig::default();
        cfg.allowed_sizes = vec![4];
        cfg.alpha = 1.0;
        let phases = vec![(2usize, scrambled(n, 4))];
        let epochs = run(n, 4, Ratio::integer(2), cfg, &phases).unwrap();
        let updated: Vec<_> = epochs.iter().filter(|e| e.updated).collect();
        assert!(!updated.is_empty());
        for e in updated {
            assert!(e.installation_ns > 0);
        }
    }

    #[test]
    fn decision_log_mirrors_epoch_outcomes() {
        let n = 16;
        let mut cfg = ControlConfig::default();
        cfg.allowed_sizes = vec![4];
        cfg.alpha = 1.0;
        let phases = vec![(3usize, scrambled(n, 4))];
        let (epochs, log) = run_with_decisions(n, 4, Ratio::integer(2), cfg, &phases).unwrap();
        assert_eq!(log.len(), epochs.len(), "one decision per epoch");
        for (e, d) in epochs.iter().zip(&log.records) {
            assert_eq!(e.updated, d.outcome == "updated");
            assert_eq!(e.updated, d.schedule_diff.is_some());
        }
        assert!(log.records.iter().all(|d| d.total_estimated_bytes > 0.0));
    }
}
