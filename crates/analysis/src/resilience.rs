//! Resilience comparison under failure storms (§6 "Practicality
//! benefits").
//!
//! The blast-radius study ([`blast`](crate::blast)) argues *statically*
//! that modular SORN confines each flow's failure exposure to its own
//! clique(s). This module measures the *dynamic* consequence: run the
//! same seeded failure storm through a flat VLB fabric and a modular
//! SORN fabric, and compare how far goodput degrades and how long each
//! takes to drain its backlog after repairs land. The inputs are the
//! engine's own degradation counters
//! ([`Metrics`](sorn_sim::Metrics)), so the table is consistent with
//! every other report the bench binaries print.

use crate::render::{fmt_latency, TextTable};
use sorn_sim::Metrics;

/// One scheme's resilience summary, derived from a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceRow {
    /// Scheme name (e.g. `"flat-vlb"`, `"sorn"`).
    pub scheme: String,
    /// Cells delivered over the whole run.
    pub delivered: u64,
    /// Cells dropped (queue overflow + shed toward dead destinations).
    pub dropped: u64,
    /// Cells stranded at run end (no route could ever drain them).
    pub stranded: u64,
    /// Distinct failure episodes the run went through.
    pub episodes: u64,
    /// Slots with at least one failed element.
    pub failure_slots: u64,
    /// Goodput while degraded, cells per slot.
    pub goodput_degraded: f64,
    /// Goodput while healthy, cells per slot.
    pub goodput_healthy: f64,
    /// Degraded over healthy goodput (1.0 = unaffected by failures).
    pub degraded_ratio: f64,
    /// Mean time from full repair to backlog drained, when measured.
    pub mean_recovery_ns: Option<f64>,
    /// Worst-case recovery time, when measured.
    pub max_recovery_ns: Option<u64>,
}

impl ResilienceRow {
    /// Summarizes a finished run's metrics under `scheme`.
    pub fn from_metrics(scheme: &str, m: &Metrics) -> Self {
        ResilienceRow {
            scheme: scheme.to_string(),
            delivered: m.delivered_cells,
            dropped: m.dropped_cells,
            stranded: m.stranded_cells,
            episodes: m.failure_episodes,
            failure_slots: m.failure_slots,
            goodput_degraded: m.goodput_during_failure(),
            goodput_healthy: m.goodput_healthy(),
            degraded_ratio: m.degraded_goodput_ratio(),
            mean_recovery_ns: m.mean_recovery_ns(),
            max_recovery_ns: m.max_recovery_ns(),
        }
    }
}

/// Renders rows as the resilience comparison table.
pub fn resilience_table(rows: &[ResilienceRow]) -> String {
    let mut t = TextTable::new(&[
        "scheme",
        "delivered",
        "dropped",
        "stranded",
        "episodes",
        "fail slots",
        "goodput ok",
        "goodput deg",
        "deg ratio",
        "mean recover",
        "max recover",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.delivered.to_string(),
            r.dropped.to_string(),
            r.stranded.to_string(),
            r.episodes.to_string(),
            r.failure_slots.to_string(),
            format!("{:.3}", r.goodput_healthy),
            format!("{:.3}", r.goodput_degraded),
            format!("{:.3}", r.degraded_ratio),
            r.mean_recovery_ns
                .map(fmt_latency)
                .unwrap_or_else(|| "-".to_string()),
            r.max_recovery_ns
                .map(|v| fmt_latency(v as f64))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Metrics {
        let mut m = Metrics::default();
        m.slots = 100;
        m.delivered_cells = 100;
        m.delivered_during_failure = 10;
        m.failure_slots = 20;
        m.failure_episodes = 2;
        m.dropped_cells = 3;
        m.stranded_cells = 4;
        m.recovery_times_ns = vec![1_000, 3_000];
        m
    }

    #[test]
    fn row_mirrors_metrics() {
        let r = ResilienceRow::from_metrics("sorn", &metrics());
        assert_eq!(r.scheme, "sorn");
        assert_eq!(r.delivered, 100);
        assert_eq!(r.dropped, 3);
        assert_eq!(r.stranded, 4);
        assert_eq!(r.episodes, 2);
        assert_eq!(r.failure_slots, 20);
        assert!((r.goodput_healthy - 1.125).abs() < 1e-12);
        assert!((r.goodput_degraded - 0.5).abs() < 1e-12);
        assert!((r.degraded_ratio - 0.5 / 1.125).abs() < 1e-12);
        assert_eq!(r.mean_recovery_ns, Some(2_000.0));
        assert_eq!(r.max_recovery_ns, Some(3_000));
    }

    #[test]
    fn table_renders_all_schemes_and_dashes_when_unmeasured() {
        let healthy = ResilienceRow::from_metrics("flat-vlb", &Metrics::default());
        let degraded = ResilienceRow::from_metrics("sorn", &metrics());
        let text = resilience_table(&[healthy, degraded]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows");
        assert!(lines[0].starts_with("scheme"));
        assert!(lines[2].starts_with("flat-vlb"));
        assert!(lines[2].contains("-"), "unmeasured recovery renders as -");
        assert!(lines[3].starts_with("sorn"));
        assert!(lines[3].contains("2.00 us"), "{text}");
    }
}
