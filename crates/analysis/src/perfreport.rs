//! The `BENCH_<label>.json` performance-report schema.
//!
//! The root `perf` binary runs a fixed scenario suite and emits one
//! [`BenchReport`] per invocation; later perf PRs regress-test against
//! a stored baseline with [`compare`]. The JSON is written and parsed
//! by hand: the schema is small and fixed, the writer controls float
//! formatting exactly, and the report pipeline stays independent of
//! serializer behavior across build environments.
//!
//! Schema (version 3; version 1 lacked `bytes_per_node`, version 2
//! lacked `slots_skipped` and `wall_per_sim_ns` — both still parse,
//! with the missing fields reported as 0):
//!
//! ```json
//! {
//!   "schema_version": 3,
//!   "label": "ci",
//!   "created_unix_s": 1754524800,
//!   "jobs": 2,
//!   "engine_threads": 1,
//!   "suite_wall_ns": 150000000,
//!   "scenarios": [
//!     {
//!       "name": "fig2f_sorn",
//!       "wall_ns": 120000000,
//!       "slots": 50000,
//!       "cells_delivered": 400000,
//!       "cells_per_sec": 3300000.0,
//!       "slots_per_sec": 416000.0,
//!       "peak_rss_bytes": 9000000,
//!       "bytes_per_node": 70312,
//!       "slots_skipped": 20000,
//!       "wall_per_sim_ns": 24.0,
//!       "phases": [
//!         {"name": "route", "calls": 400000, "total_ns": 40000000,
//!          "mean_ns": 100.0, "p99_ns": 255}
//!       ]
//!     }
//!   ]
//! }
//! ```

use crate::render::TextTable;
use sorn_telemetry::ProfileReport;
use std::fmt::Write as _;

/// The schema version this module writes. Parsing and validation also
/// accept every earlier version.
pub const SCHEMA_VERSION: u64 = 3;

/// One engine phase's timing breakdown within a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseLine {
    /// Phase name (`route`, `enqueue`, `transmit`, `deliver`,
    /// `reconfigure`, `fault_apply`).
    pub name: String,
    /// Spans recorded.
    pub calls: u64,
    /// Total wall-clock nanoseconds in the phase.
    pub total_ns: u64,
    /// Mean span duration in nanoseconds (0 when the phase never ran).
    pub mean_ns: f64,
    /// 99th-percentile span duration, `None` when the phase never ran.
    pub p99_ns: Option<u64>,
}

/// One scenario's measured performance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name, stable across runs (`fig2f_vlb`, `fig2f_sorn`,
    /// `resilience_storm`, `adaptation_sweep`).
    pub name: String,
    /// Wall-clock duration of the scenario.
    pub wall_ns: u64,
    /// Simulated slots completed.
    pub slots: u64,
    /// Cells delivered.
    pub cells_delivered: u64,
    /// Delivered cells per wall-clock second — the headline metric.
    pub cells_per_sec: f64,
    /// Simulated slots per wall-clock second.
    pub slots_per_sec: f64,
    /// Process peak RSS after the scenario (Linux `VmHWM`; 0 where
    /// unavailable). Monotone across scenarios within one run.
    pub peak_rss_bytes: u64,
    /// Peak RSS divided by the scenario's fabric size in nodes — the
    /// memory-scaling headline for the warehouse scenarios. 0 in
    /// schema-v1 reports and where RSS is unavailable.
    pub bytes_per_node: u64,
    /// Slots the engine advanced without a full per-node walk (quiet
    /// stepping plus batched fast-forward spans); at most `slots`. 0 in
    /// pre-v3 reports.
    pub slots_skipped: u64,
    /// Wall-clock nanoseconds per simulated nanosecond — the
    /// long-horizon headline (lower is better; below 1.0 the simulator
    /// outruns real time). 0 when unrecorded: pre-v3 reports, and
    /// scenarios whose unit of work is not simulated time (for example
    /// `adaptation_sweep`, which counts control epochs).
    pub wall_per_sim_ns: f64,
    /// Per-phase breakdown from the self-profiler.
    pub phases: Vec<PhaseLine>,
}

/// A full `BENCH_<label>.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Always [`SCHEMA_VERSION`] for reports this module writes.
    pub schema_version: u64,
    /// The run label (`BENCH_<label>.json`).
    pub label: String,
    /// Seconds since the Unix epoch when the report was created.
    pub created_unix_s: u64,
    /// Worker threads the suite ran on (1 = sequential; reports from
    /// before the field existed parse as 1).
    pub jobs: u64,
    /// Per-simulation engine threads (`SimConfig::engine_threads`) the
    /// scenarios ran with (1 = serial engine; reports from before the
    /// field existed parse as 1). Orthogonal to `jobs`: `jobs`
    /// parallelizes across scenarios, `engine_threads` inside each one.
    pub engine_threads: u64,
    /// Wall-clock nanoseconds for the whole suite, measured around the
    /// scenario fan-out; 0 when unrecorded (older reports). With
    /// `jobs > 1` this is smaller than the scenarios' summed `wall_ns`.
    pub suite_wall_ns: u64,
    /// The suite's scenarios, in execution order.
    pub scenarios: Vec<ScenarioResult>,
}

/// Converts a self-profiler report into schema phase lines.
pub fn phases_from_profile(report: &ProfileReport) -> Vec<PhaseLine> {
    report
        .phases
        .iter()
        .map(|p| PhaseLine {
            name: p.phase.name().to_string(),
            calls: p.calls,
            total_ns: p.total_ns,
            mean_ns: p.mean_ns,
            p99_ns: p.p99_ns,
        })
        .collect()
}

impl BenchReport {
    /// The conventional file name for this report.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.label)
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"label\": {},", json_string(&self.label));
        let _ = writeln!(out, "  \"created_unix_s\": {},", self.created_unix_s);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"engine_threads\": {},", self.engine_threads);
        let _ = writeln!(out, "  \"suite_wall_ns\": {},", self.suite_wall_ns);
        out.push_str("  \"scenarios\": [");
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_string(&s.name));
            let _ = writeln!(out, "      \"wall_ns\": {},", s.wall_ns);
            let _ = writeln!(out, "      \"slots\": {},", s.slots);
            let _ = writeln!(out, "      \"cells_delivered\": {},", s.cells_delivered);
            let _ = writeln!(
                out,
                "      \"cells_per_sec\": {},",
                fmt_f64(s.cells_per_sec)
            );
            let _ = writeln!(
                out,
                "      \"slots_per_sec\": {},",
                fmt_f64(s.slots_per_sec)
            );
            let _ = writeln!(out, "      \"peak_rss_bytes\": {},", s.peak_rss_bytes);
            let _ = writeln!(out, "      \"bytes_per_node\": {},", s.bytes_per_node);
            let _ = writeln!(out, "      \"slots_skipped\": {},", s.slots_skipped);
            let _ = writeln!(
                out,
                "      \"wall_per_sim_ns\": {},",
                fmt_f64(s.wall_per_sim_ns)
            );
            out.push_str("      \"phases\": [");
            for (j, p) in s.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{\"name\": {}, \"calls\": {}, \"total_ns\": {}, \
                     \"mean_ns\": {}, \"p99_ns\": {}}}",
                    json_string(&p.name),
                    p.calls,
                    p.total_ns,
                    fmt_f64(p.mean_ns),
                    match p.p99_ns {
                        Some(v) => v.to_string(),
                        None => "null".to_string(),
                    },
                );
            }
            if !s.phases.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.scenarios.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a report from JSON text.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let value = Json::parse(text)?;
        let obj = value.object("report")?;
        let report = BenchReport {
            schema_version: obj.field("schema_version")?.u64("schema_version")?,
            label: obj.field("label")?.string("label")?,
            created_unix_s: obj.field("created_unix_s")?.u64("created_unix_s")?,
            // Both fields postdate the first reports; absent means a
            // sequential run that never recorded its suite wall time.
            jobs: match obj.opt_field("jobs") {
                Some(v) => v.u64("jobs")?,
                None => 1,
            },
            engine_threads: match obj.opt_field("engine_threads") {
                Some(v) => v.u64("engine_threads")?,
                None => 1,
            },
            suite_wall_ns: match obj.opt_field("suite_wall_ns") {
                Some(v) => v.u64("suite_wall_ns")?,
                None => 0,
            },
            scenarios: obj
                .field("scenarios")?
                .array("scenarios")?
                .iter()
                .map(parse_scenario)
                .collect::<Result<_, _>>()?,
        };
        Ok(report)
    }

    /// Serial-sum-to-suite-wall speedup of the scenario fan-out:
    /// `sum(scenario wall_ns) / suite_wall_ns`. `None` when the suite
    /// wall time was never recorded. Sequential runs sit near 1.0;
    /// `--jobs N` runs approach the parallelizable share of N.
    pub fn aggregate_speedup(&self) -> Option<f64> {
        if self.suite_wall_ns == 0 {
            return None;
        }
        let serial: u64 = self.scenarios.iter().map(|s| s.wall_ns).sum();
        Some(serial as f64 / self.suite_wall_ns as f64)
    }

    /// Checks the report satisfies the schema's invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version == 0 || self.schema_version > SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} not in supported range 1..={SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.label.is_empty() {
            return Err("empty label".to_string());
        }
        if self.jobs == 0 {
            return Err("jobs is 0".to_string());
        }
        if self.engine_threads == 0 {
            return Err("engine_threads is 0".to_string());
        }
        if self.scenarios.is_empty() {
            return Err("no scenarios".to_string());
        }
        let mut names = std::collections::HashSet::new();
        for s in &self.scenarios {
            if s.name.is_empty() {
                return Err("scenario with empty name".to_string());
            }
            if !names.insert(&s.name) {
                return Err(format!("duplicate scenario {:?}", s.name));
            }
            if s.wall_ns == 0 {
                return Err(format!("{}: wall_ns is 0", s.name));
            }
            if s.slots == 0 {
                return Err(format!("{}: slots is 0", s.name));
            }
            if !s.cells_per_sec.is_finite() || s.cells_per_sec < 0.0 {
                return Err(format!("{}: bad cells_per_sec", s.name));
            }
            if s.phases.is_empty() {
                return Err(format!("{}: no phase breakdown", s.name));
            }
            if s.slots_skipped > s.slots {
                return Err(format!(
                    "{}: slots_skipped {} exceeds slots {}",
                    s.name, s.slots_skipped, s.slots
                ));
            }
            if !s.wall_per_sim_ns.is_finite() || s.wall_per_sim_ns < 0.0 {
                return Err(format!("{}: bad wall_per_sim_ns", s.name));
            }
            let mut phase_names = std::collections::HashSet::new();
            for p in &s.phases {
                if !phase_names.insert(&p.name) {
                    return Err(format!("{}: duplicate phase {:?}", s.name, p.name));
                }
            }
        }
        Ok(())
    }
}

fn parse_scenario(v: &Json) -> Result<ScenarioResult, String> {
    let obj = v.object("scenario")?;
    Ok(ScenarioResult {
        name: obj.field("name")?.string("name")?,
        wall_ns: obj.field("wall_ns")?.u64("wall_ns")?,
        slots: obj.field("slots")?.u64("slots")?,
        cells_delivered: obj.field("cells_delivered")?.u64("cells_delivered")?,
        cells_per_sec: obj.field("cells_per_sec")?.f64("cells_per_sec")?,
        slots_per_sec: obj.field("slots_per_sec")?.f64("slots_per_sec")?,
        peak_rss_bytes: obj.field("peak_rss_bytes")?.u64("peak_rss_bytes")?,
        // Schema v1 predates the field; absent parses as "unrecorded".
        bytes_per_node: match obj.opt_field("bytes_per_node") {
            Some(v) => v.u64("bytes_per_node")?,
            None => 0,
        },
        // Both fields postdate schema v2; absent means unrecorded.
        slots_skipped: match obj.opt_field("slots_skipped") {
            Some(v) => v.u64("slots_skipped")?,
            None => 0,
        },
        wall_per_sim_ns: match obj.opt_field("wall_per_sim_ns") {
            Some(v) => v.f64("wall_per_sim_ns")?,
            None => 0.0,
        },
        phases: obj
            .field("phases")?
            .array("phases")?
            .iter()
            .map(|p| {
                let obj = p.object("phase")?;
                Ok(PhaseLine {
                    name: obj.field("name")?.string("name")?,
                    calls: obj.field("calls")?.u64("calls")?,
                    total_ns: obj.field("total_ns")?.u64("total_ns")?,
                    mean_ns: obj.field("mean_ns")?.f64("mean_ns")?,
                    p99_ns: match obj.field("p99_ns")? {
                        Json::Null => None,
                        v => Some(v.u64("p99_ns")?),
                    },
                })
            })
            .collect::<Result<_, String>>()?,
    })
}

/// One scenario's baseline-vs-current delta.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Scenario name.
    pub scenario: String,
    /// Baseline cells/sec.
    pub baseline_cps: f64,
    /// Current cells/sec.
    pub current_cps: f64,
    /// Relative change in percent (negative = slower).
    pub delta_pct: f64,
    /// True when the slowdown exceeds the threshold.
    pub regressed: bool,
    /// Baseline peak RSS in bytes (0 = unrecorded).
    pub baseline_rss: u64,
    /// Current peak RSS in bytes (0 = unrecorded).
    pub current_rss: u64,
    /// Relative peak-RSS change in percent (positive = more memory);
    /// 0 when either side never recorded RSS.
    pub rss_delta_pct: f64,
    /// True when the RSS growth exceeds the threshold.
    pub rss_regressed: bool,
    /// Baseline wall-ns per simulated ns (0 = unrecorded).
    pub baseline_wps: f64,
    /// Current wall-ns per simulated ns (0 = unrecorded).
    pub current_wps: f64,
    /// Relative wall-per-sim-ns change in percent (positive = slower
    /// per simulated nanosecond); 0 when either side never recorded it.
    pub wps_delta_pct: f64,
    /// True when the wall-per-sim-ns growth exceeds the threshold.
    pub wps_regressed: bool,
}

/// The result of comparing a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-scenario deltas, in the current report's order.
    pub rows: Vec<CompareRow>,
    /// Allowed slowdown in percent before a row regresses.
    pub threshold_pct: f64,
    /// Baseline scenarios absent from the current report (treated as a
    /// regression: coverage must not silently shrink).
    pub missing: Vec<String>,
}

impl Comparison {
    /// True when any scenario regressed (in throughput, peak RSS, or
    /// wall-clock per simulated nanosecond) or disappeared.
    pub fn regressed(&self) -> bool {
        !self.missing.is_empty()
            || self
                .rows
                .iter()
                .any(|r| r.regressed || r.rss_regressed || r.wps_regressed)
    }

    /// The delta table, one row per compared scenario.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "scenario",
            "baseline cells/s",
            "current cells/s",
            "delta",
            "rss delta",
            "wall/sim delta",
            "verdict",
        ]);
        for r in &self.rows {
            let mut failed = Vec::new();
            if r.regressed {
                failed.push("cells/s");
            }
            if r.rss_regressed {
                failed.push("rss");
            }
            if r.wps_regressed {
                failed.push("wall/sim");
            }
            let verdict = if failed.is_empty() {
                "ok".to_string()
            } else {
                format!("REGRESSED ({})", failed.join(", "))
            };
            t.row(vec![
                r.scenario.clone(),
                format!("{:.0}", r.baseline_cps),
                format!("{:.0}", r.current_cps),
                format!("{:+.1}%", r.delta_pct),
                if r.baseline_rss > 0 && r.current_rss > 0 {
                    format!("{:+.1}%", r.rss_delta_pct)
                } else {
                    "n/a".to_string()
                },
                if r.baseline_wps > 0.0 && r.current_wps > 0.0 {
                    format!("{:+.1}%", r.wps_delta_pct)
                } else {
                    "n/a".to_string()
                },
                verdict,
            ]);
        }
        let mut out = t.render();
        for name in &self.missing {
            let _ = writeln!(out, "missing from current run: {name} (REGRESSED)");
        }
        let _ = writeln!(
            out,
            "threshold: {:.1}% slowdown on cells/sec, {:.1}% growth on peak RSS \
             and wall-ns per simulated ns",
            self.threshold_pct, self.threshold_pct
        );
        out
    }
}

/// Compares `current` against `baseline`, flagging any scenario whose
/// cells/sec fell — or whose peak RSS or wall-ns-per-simulated-ns grew
/// — by more than `threshold_pct` percent. RSS and wall-per-sim-ns are
/// only gated when both reports recorded them (legacy baselines carry
/// 0, as do non-Linux runs for RSS and epoch-counting scenarios for
/// wall-per-sim-ns). Scenarios only present in `current` are reported
/// but never regress.
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold_pct: f64) -> Comparison {
    let mut rows = Vec::new();
    for cur in &current.scenarios {
        let Some(base) = baseline.scenarios.iter().find(|s| s.name == cur.name) else {
            continue;
        };
        let delta_pct = if base.cells_per_sec > 0.0 {
            (cur.cells_per_sec - base.cells_per_sec) / base.cells_per_sec * 100.0
        } else {
            0.0
        };
        let rss_delta_pct = if base.peak_rss_bytes > 0 && cur.peak_rss_bytes > 0 {
            (cur.peak_rss_bytes as f64 - base.peak_rss_bytes as f64) / base.peak_rss_bytes as f64
                * 100.0
        } else {
            0.0
        };
        let wps_delta_pct = if base.wall_per_sim_ns > 0.0 && cur.wall_per_sim_ns > 0.0 {
            (cur.wall_per_sim_ns - base.wall_per_sim_ns) / base.wall_per_sim_ns * 100.0
        } else {
            0.0
        };
        rows.push(CompareRow {
            scenario: cur.name.clone(),
            baseline_cps: base.cells_per_sec,
            current_cps: cur.cells_per_sec,
            delta_pct,
            regressed: delta_pct < -threshold_pct,
            baseline_rss: base.peak_rss_bytes,
            current_rss: cur.peak_rss_bytes,
            rss_delta_pct,
            rss_regressed: rss_delta_pct > threshold_pct,
            baseline_wps: base.wall_per_sim_ns,
            current_wps: cur.wall_per_sim_ns,
            wps_delta_pct,
            // Lower is better, so only growth regresses.
            wps_regressed: wps_delta_pct > threshold_pct,
        });
    }
    let missing = baseline
        .scenarios
        .iter()
        .filter(|b| !current.scenarios.iter().any(|c| c.name == b.name))
        .map(|b| b.name.clone())
        .collect();
    Comparison {
        rows,
        threshold_pct,
        missing,
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value — just enough to read the schema above (and
/// anything else structurally similar). Numbers are kept as `f64`,
/// which is exact for every integer this schema produces (< 2^53).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    fn object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Object(fields) => Ok(fields),
            _ => Err(format!("{what}: expected object")),
        }
    }

    fn array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err(format!("{what}: expected array")),
        }
    }

    fn string(&self, what: &str) -> Result<String, String> {
        match self {
            Json::String(s) => Ok(s.clone()),
            _ => Err(format!("{what}: expected string")),
        }
    }

    fn f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Number(n) => Ok(*n),
            Json::Null => Ok(f64::NAN),
            _ => Err(format!("{what}: expected number")),
        }
    }

    fn u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Ok(*n as u64)
            }
            _ => Err(format!("{what}: expected non-negative integer")),
        }
    }
}

/// Field lookup on a parsed object.
trait Fields {
    fn field(&self, name: &str) -> Result<&Json, String>;
    fn opt_field(&self, name: &str) -> Option<&Json>;
}

impl Fields for [(String, Json)] {
    fn field(&self, name: &str) -> Result<&Json, String> {
        self.opt_field(name)
            .ok_or_else(|| format!("missing field {name:?}"))
    }

    fn opt_field(&self, name: &str) -> Option<&Json> {
        self.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "unsupported \\u escape".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this
                    // is always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("bad number {text:?}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            label: "test".to_string(),
            created_unix_s: 1_754_524_800,
            jobs: 2,
            engine_threads: 1,
            suite_wall_ns: 150_000_000,
            scenarios: vec![
                ScenarioResult {
                    name: "fig2f_sorn".to_string(),
                    wall_ns: 120_000_000,
                    slots: 50_000,
                    cells_delivered: 400_000,
                    cells_per_sec: 3_300_000.5,
                    slots_per_sec: 416_000.0,
                    peak_rss_bytes: 9_000_000,
                    bytes_per_node: 70_312,
                    slots_skipped: 20_000,
                    wall_per_sim_ns: 24.0,
                    phases: vec![
                        PhaseLine {
                            name: "route".to_string(),
                            calls: 400_000,
                            total_ns: 40_000_000,
                            mean_ns: 100.0,
                            p99_ns: Some(255),
                        },
                        PhaseLine {
                            name: "reconfigure".to_string(),
                            calls: 0,
                            total_ns: 0,
                            mean_ns: 0.0,
                            p99_ns: None,
                        },
                    ],
                },
                ScenarioResult {
                    name: "resilience_storm".to_string(),
                    wall_ns: 80_000_000,
                    slots: 4_000,
                    cells_delivered: 90_000,
                    cells_per_sec: 1_125_000.0,
                    slots_per_sec: 50_000.0,
                    peak_rss_bytes: 9_500_000,
                    bytes_per_node: 74_218,
                    slots_skipped: 0,
                    wall_per_sim_ns: 0.0,
                    phases: vec![PhaseLine {
                        name: "transmit".to_string(),
                        calls: 4_000,
                        total_ns: 30_000_000,
                        mean_ns: 7_500.0,
                        p99_ns: Some(16_383),
                    }],
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let json = report.to_json();
        let back = BenchReport::parse(&json).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn sample_report_validates() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn validation_rejects_bad_reports() {
        let mut r = sample();
        r.schema_version = 99;
        assert!(r.validate().is_err());

        let mut r = sample();
        r.scenarios.clear();
        assert!(r.validate().is_err());

        let mut r = sample();
        r.scenarios[1].name = r.scenarios[0].name.clone();
        assert!(r.validate().is_err());

        let mut r = sample();
        r.scenarios[0].wall_ns = 0;
        assert!(r.validate().is_err());

        let mut r = sample();
        r.scenarios[0].phases.clear();
        assert!(r.validate().is_err());

        let mut r = sample();
        r.scenarios[0].slots_skipped = r.scenarios[0].slots + 1;
        assert!(r.validate().is_err());

        let mut r = sample();
        r.scenarios[0].wall_per_sim_ns = f64::NAN;
        assert!(r.validate().is_err());
    }

    #[test]
    fn file_name_embeds_the_label() {
        assert_eq!(sample().file_name(), "BENCH_test.json");
    }

    #[test]
    fn reports_without_parallelism_fields_still_parse() {
        // Reports written before `jobs` / `suite_wall_ns` existed must
        // keep parsing (the committed baselines are such files).
        let mut json = sample().to_json();
        json = json
            .lines()
            .filter(|l| {
                !l.contains("\"jobs\"")
                    && !l.contains("\"engine_threads\"")
                    && !l.contains("\"suite_wall_ns\"")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = BenchReport::parse(&json).expect("parse legacy report");
        assert_eq!(back.jobs, 1);
        assert_eq!(back.engine_threads, 1);
        assert_eq!(back.suite_wall_ns, 0);
        assert_eq!(back.aggregate_speedup(), None);
        assert_eq!(back.validate(), Ok(()));
    }

    #[test]
    fn schema_v1_reports_still_parse_and_validate() {
        // A v1 file: no bytes_per_node (nor the later v3 fields),
        // schema_version 1. Committed baselines from earlier PRs are
        // such files.
        let mut json = sample().to_json();
        json = json
            .lines()
            .filter(|l| {
                !l.contains("\"bytes_per_node\"")
                    && !l.contains("\"slots_skipped\"")
                    && !l.contains("\"wall_per_sim_ns\"")
            })
            .map(|l| l.replace("\"schema_version\": 3", "\"schema_version\": 1"))
            .collect::<Vec<_>>()
            .join("\n");
        let back = BenchReport::parse(&json).expect("parse v1 report");
        assert_eq!(back.schema_version, 1);
        assert!(back.scenarios.iter().all(|s| s.bytes_per_node == 0));
        assert_eq!(back.validate(), Ok(()));
        // Future versions stay rejected.
        let mut r = sample();
        r.schema_version = SCHEMA_VERSION + 1;
        assert!(r.validate().is_err());
    }

    #[test]
    fn schema_v2_reports_still_parse_and_validate() {
        // A v2 file: bytes_per_node present, but no slots_skipped or
        // wall_per_sim_ns. The committed CI baseline predates v3.
        let mut json = sample().to_json();
        json = json
            .lines()
            .filter(|l| !l.contains("\"slots_skipped\"") && !l.contains("\"wall_per_sim_ns\""))
            .map(|l| l.replace("\"schema_version\": 3", "\"schema_version\": 2"))
            .collect::<Vec<_>>()
            .join("\n");
        let back = BenchReport::parse(&json).expect("parse v2 report");
        assert_eq!(back.schema_version, 2);
        assert!(back.scenarios.iter().all(|s| s.slots_skipped == 0));
        assert!(back.scenarios.iter().all(|s| s.wall_per_sim_ns == 0.0));
        assert_eq!(back.scenarios[0].bytes_per_node, 70_312);
        assert_eq!(back.validate(), Ok(()));
    }

    #[test]
    fn aggregate_speedup_is_serial_sum_over_suite_wall() {
        let r = sample();
        // 120 ms + 80 ms of scenario work in a 150 ms suite.
        let speedup = r.aggregate_speedup().expect("suite wall recorded");
        assert!((speedup - 200.0 / 150.0).abs() < 1e-12);

        let mut r = sample();
        r.jobs = 0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn compare_flags_only_past_threshold_slowdowns() {
        let base = sample();
        let mut cur = sample();
        // 5% slower: within a 10% threshold.
        cur.scenarios[0].cells_per_sec = base.scenarios[0].cells_per_sec * 0.95;
        // 20% faster: never a regression.
        cur.scenarios[1].cells_per_sec = base.scenarios[1].cells_per_sec * 1.2;
        let cmp = compare(&base, &cur, 10.0);
        assert!(!cmp.regressed());
        assert_eq!(cmp.rows.len(), 2);
        assert!(cmp.rows[0].delta_pct < 0.0);
        assert!(cmp.rows[1].delta_pct > 0.0);

        // 20% slower: past the threshold.
        cur.scenarios[0].cells_per_sec = base.scenarios[0].cells_per_sec * 0.8;
        let cmp = compare(&base, &cur, 10.0);
        assert!(cmp.regressed());
        assert!(cmp.rows[0].regressed);
        let table = cmp.render();
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("fig2f_sorn"));
    }

    #[test]
    fn compare_gates_on_peak_rss_growth() {
        let base = sample();
        let mut cur = sample();
        // 50% more memory at equal throughput: an RSS regression.
        cur.scenarios[0].peak_rss_bytes = base.scenarios[0].peak_rss_bytes * 3 / 2;
        let cmp = compare(&base, &cur, 10.0);
        assert!(cmp.regressed());
        assert!(cmp.rows[0].rss_regressed && !cmp.rows[0].regressed);
        assert!(cmp.render().contains("REGRESSED (rss)"));

        // RSS shrinking is never a regression.
        cur.scenarios[0].peak_rss_bytes = base.scenarios[0].peak_rss_bytes / 2;
        assert!(!compare(&base, &cur, 10.0).regressed());

        // Legacy baselines without RSS (0) skip the gate.
        let mut old = sample();
        old.scenarios[0].peak_rss_bytes = 0;
        cur.scenarios[0].peak_rss_bytes = base.scenarios[0].peak_rss_bytes * 10;
        let cmp = compare(&old, &cur, 10.0);
        assert!(!cmp.rows[0].rss_regressed);
        assert!(cmp.render().contains("n/a"));
    }

    #[test]
    fn compare_gates_on_wall_per_sim_ns_growth() {
        let base = sample();
        let mut cur = sample();
        // 50% more wall per simulated ns at equal throughput: slower
        // long-horizon stepping is a regression even when cells/sec
        // (dominated by busy slots) holds steady.
        cur.scenarios[0].wall_per_sim_ns = base.scenarios[0].wall_per_sim_ns * 1.5;
        let cmp = compare(&base, &cur, 10.0);
        assert!(cmp.regressed());
        assert!(cmp.rows[0].wps_regressed && !cmp.rows[0].regressed);
        assert!(cmp.render().contains("REGRESSED (wall/sim)"));

        // Getting faster per simulated ns is never a regression.
        cur.scenarios[0].wall_per_sim_ns = base.scenarios[0].wall_per_sim_ns / 2.0;
        assert!(!compare(&base, &cur, 10.0).regressed());

        // Pre-v3 baselines carry 0 and skip the gate; scenario 1 never
        // records it, so its row renders n/a on both sides.
        let mut old = sample();
        old.scenarios[0].wall_per_sim_ns = 0.0;
        cur.scenarios[0].wall_per_sim_ns = base.scenarios[0].wall_per_sim_ns * 10.0;
        let cmp = compare(&old, &cur, 10.0);
        assert!(!cmp.rows[0].wps_regressed);
        assert!(cmp.render().contains("n/a"));
    }

    #[test]
    fn compare_treats_missing_scenarios_as_regressions() {
        let base = sample();
        let mut cur = sample();
        cur.scenarios.remove(1);
        let cmp = compare(&base, &cur, 10.0);
        assert!(cmp.regressed());
        assert_eq!(cmp.missing, vec!["resilience_storm".to_string()]);
        assert!(cmp.render().contains("missing from current run"));
    }

    #[test]
    fn parser_handles_escapes_and_whitespace() {
        let v = Json::parse(" { \"a\\n\" : [ 1 , -2.5e1 , null , true ] } ").unwrap();
        let obj = v.object("v").unwrap();
        let arr = obj.field("a\n").unwrap().array("a").unwrap();
        assert_eq!(arr[0], Json::Number(1.0));
        assert_eq!(arr[1], Json::Number(-25.0));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(arr[3], Json::Bool(true));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_extraction_rejects_fractions_and_negatives() {
        assert!(Json::Number(1.5).u64("x").is_err());
        assert!(Json::Number(-1.0).u64("x").is_err());
        assert_eq!(Json::Number(42.0).u64("x"), Ok(42));
    }
}
