//! Flow-completion-time analysis: size-bucketed FCT and slowdown.
//!
//! The standard DCN evaluation (pFabric and successors) reports FCT
//! *slowdown* — completion time divided by the flow's ideal time on an
//! unloaded fabric — bucketed by flow size, since short latency-
//! sensitive flows and long bulk flows experience circuit networks very
//! differently (the whole point of Table 1's short/bulk split for
//! Opera).

use sorn_sim::{FlowRecord, Nanos, SimConfig};

/// The ideal (unloaded, single-hop) completion time of a flow: inject
/// its cells back-to-back at line rate, plus one slot of transmission
/// and one propagation delay.
pub fn ideal_fct_ns(size_bytes: u64, cfg: &SimConfig) -> Nanos {
    let cells = size_bytes.div_ceil(cfg.cell_bytes as u64).max(1);
    (cells - 1) * cfg.slot_ns / cfg.uplinks as u64 + cfg.slot_ns + cfg.propagation_ns
}

/// Slowdown of one completed flow.
pub fn slowdown(record: &FlowRecord, cfg: &SimConfig) -> f64 {
    record.fct_ns() as f64 / ideal_fct_ns(record.size_bytes, cfg) as f64
}

/// A size bucket with its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeBucket {
    /// Inclusive lower bound in bytes.
    pub lo: u64,
    /// Exclusive upper bound in bytes (`u64::MAX` for the last bucket).
    pub hi: u64,
    /// Flows in the bucket.
    pub flows: usize,
    /// Mean FCT in nanoseconds.
    pub mean_fct_ns: f64,
    /// 99th-percentile FCT in nanoseconds.
    pub p99_fct_ns: Nanos,
    /// Mean slowdown.
    pub mean_slowdown: f64,
    /// 99th-percentile slowdown.
    pub p99_slowdown: f64,
}

/// The default size buckets: <10 KB (latency-sensitive requests),
/// 10–100 KB, 100 KB–1 MB, ≥1 MB (bulk).
pub const DEFAULT_BUCKETS: [(u64, u64); 4] = [
    (0, 10_000),
    (10_000, 100_000),
    (100_000, 1_000_000),
    (1_000_000, u64::MAX),
];

/// Buckets completed flows by size and computes FCT/slowdown statistics.
pub fn bucketed_slowdown(
    flows: &[FlowRecord],
    cfg: &SimConfig,
    buckets: &[(u64, u64)],
) -> Vec<SizeBucket> {
    buckets
        .iter()
        .map(|&(lo, hi)| {
            let members: Vec<&FlowRecord> = flows
                .iter()
                .filter(|f| f.size_bytes >= lo && f.size_bytes < hi)
                .collect();
            if members.is_empty() {
                return SizeBucket {
                    lo,
                    hi,
                    flows: 0,
                    mean_fct_ns: 0.0,
                    p99_fct_ns: 0,
                    mean_slowdown: 0.0,
                    p99_slowdown: 0.0,
                };
            }
            let mut fcts: Vec<Nanos> = members.iter().map(|f| f.fct_ns()).collect();
            fcts.sort_unstable();
            let mut sds: Vec<f64> = members.iter().map(|f| slowdown(f, cfg)).collect();
            sds.sort_by(|a, b| a.partial_cmp(b).expect("finite slowdowns"));
            let p99 = |len: usize| ((len - 1) as f64 * 0.99).round() as usize;
            SizeBucket {
                lo,
                hi,
                flows: members.len(),
                mean_fct_ns: fcts.iter().map(|&f| f as f64).sum::<f64>() / fcts.len() as f64,
                p99_fct_ns: fcts[p99(fcts.len())],
                mean_slowdown: sds.iter().sum::<f64>() / sds.len() as f64,
                p99_slowdown: sds[p99(sds.len())],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::FlowId;

    fn rec(size: u64, fct: Nanos) -> FlowRecord {
        FlowRecord {
            id: FlowId(0),
            size_bytes: size,
            arrival_ns: 0,
            completion_ns: fct,
            max_hops: 2,
        }
    }

    #[test]
    fn ideal_fct_accounts_for_cells_and_uplinks() {
        let cfg = SimConfig::default(); // 1250 B cells, 100 ns slots, 1 uplink
                                        // Single cell: one slot + propagation.
        assert_eq!(ideal_fct_ns(1000, &cfg), 600);
        // Four cells: three more slots of injection.
        assert_eq!(ideal_fct_ns(5000, &cfg), 900);
        // With 4 uplinks injection parallelizes.
        let mut cfg4 = cfg;
        cfg4.uplinks = 4;
        assert_eq!(ideal_fct_ns(5000, &cfg4), 675);
    }

    #[test]
    fn slowdown_is_relative_to_ideal() {
        let cfg = SimConfig::default();
        let f = rec(1000, 1200); // ideal 600
        assert!((slowdown(&f, &cfg) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bucketing_separates_sizes() {
        let cfg = SimConfig::default();
        let flows = vec![
            rec(500, 600),
            rec(5_000, 2_000),
            rec(50_000, 10_000),
            rec(2_000_000, 300_000),
        ];
        let buckets = bucketed_slowdown(&flows, &cfg, &DEFAULT_BUCKETS);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].flows, 2);
        assert_eq!(buckets[1].flows, 1);
        assert_eq!(buckets[2].flows, 0);
        assert_eq!(buckets[3].flows, 1);
        assert_eq!(buckets[2].mean_slowdown, 0.0);
        // First bucket: slowdowns 1.0 (500B in 600ns) and ~2.22.
        assert!(buckets[0].mean_slowdown > 1.0);
        assert!(buckets[0].p99_slowdown >= buckets[0].mean_slowdown);
    }

    #[test]
    fn p99_is_the_tail() {
        let cfg = SimConfig::default();
        let mut flows: Vec<FlowRecord> = (0..100).map(|i| rec(1000, 600 + i * 10)).collect();
        flows.push(rec(1000, 60_000)); // outlier
        let b = bucketed_slowdown(&flows, &cfg, &[(0, u64::MAX)]);
        assert_eq!(b[0].flows, 101);
        assert!(b[0].p99_fct_ns >= 1580);
        assert!(b[0].p99_fct_ns < 60_000);
    }
}
