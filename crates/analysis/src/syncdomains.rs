//! Time-synchronization domains — §6 "Practicality benefits".
//!
//! "Modularity can also relax time-synchronization requirements, as a
//! node participates in independent schedules on each hierarchical
//! level, reducing the diameter of an individual synchronization domain.
//! Smaller schedules may also better tolerate larger time slots and
//! synchronization overheads."
//!
//! Slot-synchronous fabrics pad every slot with a guard interval that
//! absorbs clock skew plus propagation-delay spread across the nodes
//! that must agree on slot boundaries (the *synchronization domain*).
//! A flat design synchronizes the whole fabric; a SORN's intra-clique
//! slots only need clique-local agreement. This module quantifies the
//! resulting guard times and schedule efficiency.

/// Physical assumptions for the synchronization model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncModel {
    /// Fiber propagation spread per node of domain "span": we model a
    /// domain of `k` co-located nodes as spanning `span_per_node_m * k`
    /// meters of fiber between its farthest members.
    pub span_per_node_m: f64,
    /// Signal velocity in fiber, meters per nanosecond (~0.2 m/ns).
    pub fiber_m_per_ns: f64,
    /// Residual clock skew between any two synchronized nodes, ns.
    pub clock_skew_ns: f64,
    /// Useful transmit time per slot, ns (guard is added on top).
    pub transmit_ns: f64,
}

impl Default for SyncModel {
    fn default() -> Self {
        SyncModel {
            span_per_node_m: 0.5, // dense racks: half a meter per node
            fiber_m_per_ns: 0.2,
            clock_skew_ns: 5.0,
            transmit_ns: 100.0,
        }
    }
}

impl SyncModel {
    /// Guard time needed by a synchronization domain of `k` nodes:
    /// propagation spread across the domain plus twice the clock skew.
    pub fn guard_ns(&self, domain_size: usize) -> f64 {
        let spread = self.span_per_node_m * domain_size as f64 / self.fiber_m_per_ns;
        spread + 2.0 * self.clock_skew_ns
    }

    /// Slot efficiency for a domain: transmit / (transmit + guard).
    pub fn efficiency(&self, domain_size: usize) -> f64 {
        self.transmit_ns / (self.transmit_ns + self.guard_ns(domain_size))
    }
}

/// Synchronization report for one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncReport {
    /// Design label.
    pub design: String,
    /// Domain size of intra-level slots (the whole fabric for flat
    /// designs, one clique for SORN).
    pub intra_domain: usize,
    /// Domain size of inter-level slots (0 when the design has none).
    pub inter_domain: usize,
    /// Guard time for intra-level slots, ns.
    pub intra_guard_ns: f64,
    /// Guard time for inter-level slots, ns.
    pub inter_guard_ns: f64,
    /// Bandwidth-weighted slot efficiency.
    pub efficiency: f64,
}

/// Flat design: one global domain of `n` nodes.
pub fn flat_sync(n: usize, model: &SyncModel) -> SyncReport {
    SyncReport {
        design: format!("flat ORN ({n} nodes)"),
        intra_domain: n,
        inter_domain: 0,
        intra_guard_ns: model.guard_ns(n),
        inter_guard_ns: 0.0,
        efficiency: model.efficiency(n),
    }
}

/// SORN: intra slots synchronize one clique (`c` nodes); inter slots
/// synchronize clique *boundaries* — one representative per clique pair,
/// modeled as a domain of `nc` points spaced at clique granularity.
///
/// `intra_fraction` is the share of slots that are intra-clique
/// (`q/(q+1)`), weighting the efficiency.
pub fn sorn_sync(n: usize, cliques: usize, q: f64, model: &SyncModel) -> SyncReport {
    assert!(cliques >= 1 && n.is_multiple_of(cliques));
    let c = n / cliques;
    // Inter-domain span: nc anchor points, each a clique apart, so the
    // physical spread still covers the hall — but only the nc anchors
    // must agree, and each clique's members only sync locally to their
    // anchor. Effective inter domain spread = cliques * (span of one
    // clique) is the worst case; we model the anchors at clique pitch.
    let intra_fraction = q / (q + 1.0);
    let intra_eff = model.efficiency(c);
    // Inter slots: domain spread spans the whole fabric (anchors sit a
    // clique apart), but skew accumulates over two sync levels.
    let inter_guard = model.guard_ns(n) + 2.0 * model.clock_skew_ns;
    let inter_eff = model.transmit_ns / (model.transmit_ns + inter_guard);
    SyncReport {
        design: format!("SORN ({cliques} cliques of {c})"),
        intra_domain: c,
        inter_domain: cliques,
        intra_guard_ns: model.guard_ns(c),
        inter_guard_ns: inter_guard,
        efficiency: intra_fraction * intra_eff + (1.0 - intra_fraction) * inter_eff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_grows_with_domain_size() {
        let m = SyncModel::default();
        assert!(m.guard_ns(64) < m.guard_ns(4096));
        // 4096 nodes at 0.5 m/node over 0.2 m/ns = 10240 ns spread.
        assert!((m.guard_ns(4096) - (10_240.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn efficiency_decreases_with_domain_size() {
        let m = SyncModel::default();
        assert!(m.efficiency(64) > m.efficiency(4096));
        assert!(m.efficiency(64) > 0.3);
        assert!(m.efficiency(4096) < 0.05);
    }

    #[test]
    fn sorn_intra_slots_beat_flat_sync() {
        let m = SyncModel::default();
        let flat = flat_sync(4096, &m);
        let sorn = sorn_sync(4096, 64, 50.0 / 11.0, &m);
        // The intra-level domain shrinks from 4096 to 64 nodes.
        assert_eq!(flat.intra_domain, 4096);
        assert_eq!(sorn.intra_domain, 64);
        assert!(sorn.intra_guard_ns * 10.0 < flat.intra_guard_ns);
        // Overall efficiency (bandwidth-weighted) improves a lot: most
        // slots are intra and only need clique-local sync.
        assert!(
            sorn.efficiency > flat.efficiency * 5.0,
            "sorn {} vs flat {}",
            sorn.efficiency,
            flat.efficiency
        );
    }

    #[test]
    fn more_cliques_mean_cheaper_intra_sync() {
        let m = SyncModel::default();
        let s32 = sorn_sync(4096, 32, 4.0, &m);
        let s64 = sorn_sync(4096, 64, 4.0, &m);
        assert!(s64.intra_guard_ns < s32.intra_guard_ns);
        assert!(s64.efficiency > s32.efficiency);
    }

    #[test]
    fn single_clique_degenerates_to_flat() {
        let m = SyncModel::default();
        let s = sorn_sync(256, 1, 4.0, &m);
        assert_eq!(s.intra_domain, 256);
        assert_eq!(s.intra_guard_ns, flat_sync(256, &m).intra_guard_ns);
    }
}
