//! Tail autopsy: where a traced cell's latency actually went.
//!
//! Consumes the [`CellBreakdown`]s a
//! [`FlowTraceCollector`](sorn_telemetry::FlowTraceCollector) derives
//! from causal flow traces and answers the question the aggregate
//! latency histogram can't: for the *slowest* cells, how much of the
//! time was unavoidable reconfiguration wait (the rotation schedule's
//! tax), how much was queueing contention, and how much was time on the
//! wire. Renders a paper-style text table with a percentile summary on
//! top and one row per tail cell below.

use crate::render::{fmt_latency, fmt_pct, TextTable};
use sorn_telemetry::CellBreakdown;

/// Aggregate attribution over one latency population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributionShare {
    /// Fraction of total latency spent queued (contention).
    pub queue: f64,
    /// Fraction spent waiting for scheduled circuits.
    pub reconfig: f64,
    /// Fraction spent in transmission (slot + propagation).
    pub transmit: f64,
}

impl AttributionShare {
    fn of(cells: &[&CellBreakdown]) -> AttributionShare {
        let total: u64 = cells.iter().filter_map(|c| c.latency_ns).sum();
        if total == 0 {
            return AttributionShare {
                queue: 0.0,
                reconfig: 0.0,
                transmit: 0.0,
            };
        }
        let queue: u64 = cells.iter().map(|c| c.queue_ns).sum();
        let reconfig: u64 = cells.iter().map(|c| c.reconfig_wait_ns).sum();
        let transmit: u64 = cells.iter().map(|c| c.transmit_ns).sum();
        AttributionShare {
            queue: queue as f64 / total as f64,
            reconfig: reconfig as f64 / total as f64,
            transmit: transmit as f64 / total as f64,
        }
    }
}

/// One percentile band of the delivered-latency distribution with its
/// attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailBand {
    /// Human label, e.g. `"p99.9"`.
    pub label: &'static str,
    /// The percentile's latency threshold in nanoseconds.
    pub threshold_ns: u64,
    /// Number of delivered cells at or above the threshold.
    pub cells: usize,
    /// Where those cells' latency went.
    pub share: AttributionShare,
}

/// The full tail-autopsy report over one run's traced cells.
#[derive(Debug, Clone)]
pub struct TailAutopsy {
    /// Traced cells that were delivered.
    pub delivered: usize,
    /// Traced cells that were dropped.
    pub dropped: usize,
    /// Traced cells neither delivered nor dropped at run end.
    pub in_flight: usize,
    /// Attribution over every delivered traced cell.
    pub overall: AttributionShare,
    /// Attribution bands at p50 / p99 / p99.9 of delivered latency.
    pub bands: Vec<TailBand>,
    /// The slowest delivered cells, latency-descending (ties broken by
    /// flow then seq, so the report is deterministic).
    pub worst: Vec<CellBreakdown>,
}

impl TailAutopsy {
    /// Builds the autopsy, keeping the `keep_worst` slowest delivered
    /// cells for the per-cell table.
    pub fn from_breakdowns(breakdowns: &[CellBreakdown], keep_worst: usize) -> TailAutopsy {
        let delivered: Vec<&CellBreakdown> = breakdowns
            .iter()
            .filter(|c| c.latency_ns.is_some())
            .collect();
        let dropped = breakdowns.iter().filter(|c| c.dropped).count();
        let in_flight = breakdowns.len() - delivered.len() - dropped;

        let mut by_latency = delivered.clone();
        // Latency descending; (flow, seq) ascending on ties keeps the
        // report byte-stable across runs and thread counts.
        by_latency.sort_by(|a, b| {
            b.latency_ns
                .cmp(&a.latency_ns)
                .then(a.flow.cmp(&b.flow))
                .then(a.seq.cmp(&b.seq))
        });

        let bands = [("p50", 0.50), ("p99", 0.99), ("p99.9", 0.999)]
            .into_iter()
            .filter_map(|(label, p)| {
                if by_latency.is_empty() {
                    return None;
                }
                // Cells at or above the percentile: the slowest
                // (1-p) fraction of them, at least one. Round rather
                // than ceil: (1-0.999)*1000 is 1.0000000000000009.
                let keep = (((1.0 - p) * by_latency.len() as f64).round() as usize)
                    .clamp(1, by_latency.len());
                let band = &by_latency[..keep];
                Some(TailBand {
                    label,
                    threshold_ns: band[keep - 1].latency_ns.unwrap_or(0),
                    cells: keep,
                    share: AttributionShare::of(band),
                })
            })
            .collect();

        TailAutopsy {
            delivered: delivered.len(),
            dropped,
            in_flight,
            overall: AttributionShare::of(&delivered),
            bands,
            worst: by_latency.into_iter().take(keep_worst).cloned().collect(),
        }
    }

    /// Renders the report: a band summary table and the per-cell tail
    /// table, in the `render` module's text-table style.
    pub fn render(&self) -> String {
        let mut out = format!(
            "tail autopsy: {} delivered, {} dropped, {} in flight\n\n",
            self.delivered, self.dropped, self.in_flight
        );

        let mut bands = TextTable::new(&[
            "band",
            "latency >=",
            "cells",
            "queue",
            "reconfig",
            "transmit",
        ]);
        bands.row(vec![
            "all".into(),
            "-".into(),
            self.delivered.to_string(),
            fmt_pct(self.overall.queue),
            fmt_pct(self.overall.reconfig),
            fmt_pct(self.overall.transmit),
        ]);
        for b in &self.bands {
            bands.row(vec![
                b.label.into(),
                fmt_latency(b.threshold_ns as f64),
                b.cells.to_string(),
                fmt_pct(b.share.queue),
                fmt_pct(b.share.reconfig),
                fmt_pct(b.share.transmit),
            ]);
        }
        out.push_str(&bands.render());

        if !self.worst.is_empty() {
            out.push('\n');
            let mut worst = TextTable::new(&[
                "flow", "cell", "latency", "queue", "reconfig", "transmit", "hops",
            ]);
            for c in &self.worst {
                worst.row(vec![
                    c.flow.to_string(),
                    c.seq.to_string(),
                    fmt_latency(c.latency_ns.unwrap_or(0) as f64),
                    fmt_latency(c.queue_ns as f64),
                    fmt_latency(c.reconfig_wait_ns as f64),
                    fmt_latency(c.transmit_ns as f64),
                    c.hops.to_string(),
                ]);
            }
            out.push_str(&worst.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(flow: u64, seq: u64, latency: Option<u64>, q: u64, r: u64, t: u64) -> CellBreakdown {
        CellBreakdown {
            flow,
            seq,
            injected_ns: 0,
            latency_ns: latency,
            queue_ns: q,
            reconfig_wait_ns: r,
            transmit_ns: t,
            hops: 2,
            dropped: latency.is_none(),
        }
    }

    #[test]
    fn attribution_shares_sum_to_one_for_exact_splits() {
        let cells = vec![cell(0, 0, Some(1000), 300, 200, 500)];
        let a = TailAutopsy::from_breakdowns(&cells, 4);
        assert!((a.overall.queue - 0.3).abs() < 1e-12);
        assert!((a.overall.reconfig - 0.2).abs() < 1e-12);
        assert!((a.overall.transmit - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tail_bands_narrow_toward_the_slowest_cells() {
        // 1000 cells: 999 fast (all transmit), 1 slow (all queueing).
        let mut cells: Vec<CellBreakdown> =
            (0..999).map(|i| cell(i, 0, Some(700), 0, 0, 700)).collect();
        cells.push(cell(999, 0, Some(50_000), 49_300, 0, 700));
        let a = TailAutopsy::from_breakdowns(&cells, 3);
        assert_eq!(a.delivered, 1000);
        let p999 = a.bands.iter().find(|b| b.label == "p99.9").unwrap();
        assert_eq!(p999.cells, 1);
        assert!(p999.share.queue > 0.95, "tail should be queue-dominated");
        // The overall split is transmit-heavy.
        assert!(a.overall.transmit > 0.9);
        assert_eq!(a.worst.len(), 3);
        assert_eq!(a.worst[0].flow, 999);
    }

    #[test]
    fn worst_rows_are_deterministically_ordered() {
        let cells = vec![
            cell(2, 0, Some(900), 0, 0, 900),
            cell(1, 1, Some(900), 0, 0, 900),
            cell(1, 0, Some(900), 0, 0, 900),
        ];
        let a = TailAutopsy::from_breakdowns(&cells, 3);
        let order: Vec<(u64, u64)> = a.worst.iter().map(|c| (c.flow, c.seq)).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn dropped_and_in_flight_cells_are_counted_not_attributed() {
        let cells = vec![cell(0, 0, Some(700), 0, 0, 700), cell(0, 1, None, 0, 0, 0)];
        let a = TailAutopsy::from_breakdowns(&cells, 2);
        assert_eq!(a.delivered, 1);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.in_flight, 0);
        assert_eq!(a.worst.len(), 1);
    }

    #[test]
    fn render_contains_bands_and_rows() {
        let cells = vec![cell(7, 3, Some(1400), 400, 300, 700)];
        let a = TailAutopsy::from_breakdowns(&cells, 1);
        let text = a.render();
        assert!(text.contains("tail autopsy: 1 delivered"));
        assert!(text.contains("p99.9"));
        assert!(text.contains("1.40 us"));
        // Per-cell table includes the flow id.
        assert!(text.lines().any(|l| l.trim_start().starts_with('7')));
        // Deterministic rendering.
        assert_eq!(text, a.render());
    }

    #[test]
    fn empty_input_renders_without_panicking() {
        let a = TailAutopsy::from_breakdowns(&[], 4);
        assert_eq!(a.delivered, 0);
        assert!(a.bands.is_empty());
        assert!(a.render().contains("0 delivered"));
    }
}
