//! Plain-text table rendering for experiment reports.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                line.push_str(&" ".repeat(width[i] - c.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Writes rows as CSV (header + records), for plotting tools.
///
/// Fields containing commas or quotes are quoted per RFC 4180.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Formats a latency in nanoseconds with an adaptive unit (ns/µs/ms).
pub fn fmt_latency(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Formats a throughput as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "value" starts at the same offset everywhere.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 2], "22");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_awkward_fields() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["1,5".into(), "say \"hi\"".into()],
                vec!["2".into(), "plain".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "\"1,5\",\"say \"\"hi\"\"\"");
        assert_eq!(lines[2], "2,plain");
    }

    #[test]
    fn latency_formatting_picks_units() {
        assert_eq!(fmt_latency(500.0), "500 ns");
        assert_eq!(fmt_latency(26_590.0), "26.59 us");
        assert_eq!(fmt_latency(23_034_000.0), "23.03 ms");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.4098), "40.98%");
        assert_eq!(fmt_pct(0.5), "50.00%");
    }
}
