//! Time-series summaries of telemetry run traces.
//!
//! Consumes the [`Snapshot`] series an
//! [`IntervalSampler`](sorn_telemetry::IntervalSampler) emits and
//! renders queue- and utilization-over-time as percentile tables and
//! CSV timelines, following the `render` module's conventions.

use crate::render::{to_csv, TextTable};
use sorn_telemetry::{Snapshot, TraceEvent};

/// Order statistics of one sampled series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Smallest sample.
    pub min: f64,
    /// Median sample.
    pub p50: f64,
    /// 90th-percentile sample.
    pub p90: f64,
    /// 99th-percentile sample.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl SeriesStats {
    /// Computes stats over `samples`; `None` when the series is empty.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
        let pct = |p: f64| -> f64 {
            let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
            sorted[rank.min(sorted.len() - 1)]
        };
        Some(SeriesStats {
            min: sorted[0],
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
            max: sorted[sorted.len() - 1],
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
        })
    }
}

/// Extracts the snapshot series from a trace, in order.
pub fn snapshots_of(events: &[TraceEvent]) -> Vec<Snapshot> {
    events
        .iter()
        .filter_map(|e| e.snapshot().cloned())
        .collect()
}

/// The named per-snapshot series the summary table reports.
fn series(snapshots: &[Snapshot]) -> Vec<(&'static str, Vec<f64>)> {
    vec![
        (
            "queued cells",
            snapshots.iter().map(|s| s.queued_cells as f64).collect(),
        ),
        (
            "in-flight cells",
            snapshots.iter().map(|s| s.inflight_cells as f64).collect(),
        ),
        (
            "circuit utilization",
            snapshots.iter().map(|s| s.circuit_utilization).collect(),
        ),
        (
            "delivery fraction",
            snapshots.iter().map(|s| s.delivery_fraction).collect(),
        ),
    ]
}

/// Renders a percentile table (one row per series) over the sampled
/// queue depths, in-flight counts, utilization, and delivery fraction.
pub fn summary_table(snapshots: &[Snapshot]) -> TextTable {
    let mut t = TextTable::new(&["series", "min", "p50", "p90", "p99", "max", "mean"]);
    for (name, samples) in series(snapshots) {
        let Some(s) = SeriesStats::of(&samples) else {
            continue;
        };
        t.row(vec![
            name.to_string(),
            format!("{:.2}", s.min),
            format!("{:.2}", s.p50),
            format!("{:.2}", s.p90),
            format!("{:.2}", s.p99),
            format!("{:.2}", s.max),
            format!("{:.2}", s.mean),
        ]);
    }
    t
}

/// Renders the snapshot timeline as CSV (one record per sample), for
/// plotting queue and utilization curves over time.
pub fn timeline_csv(snapshots: &[Snapshot]) -> String {
    let rows: Vec<Vec<String>> = snapshots
        .iter()
        .map(|s| {
            vec![
                s.at_ns.to_string(),
                s.slot.to_string(),
                s.queued_cells.to_string(),
                s.inflight_cells.to_string(),
                s.injected_cells.to_string(),
                s.delivered_cells.to_string(),
                s.dropped_cells.to_string(),
                format!("{:.6}", s.circuit_utilization),
                format!("{:.6}", s.delivery_fraction),
            ]
        })
        .collect();
    to_csv(
        &[
            "at_ns",
            "slot",
            "queued_cells",
            "inflight_cells",
            "injected_cells",
            "delivered_cells",
            "dropped_cells",
            "circuit_utilization",
            "delivery_fraction",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_ns: u64, queued: u64, util: f64) -> Snapshot {
        Snapshot {
            at_ns,
            slot: at_ns / 100,
            queued_cells: queued,
            inflight_cells: queued / 2,
            injected_cells: 100,
            delivered_cells: 90,
            dropped_cells: 0,
            transmissions: 120,
            circuit_utilization: util,
            delivery_fraction: 0.75,
            p50_cell_latency_ns: Some(1023),
            p99_cell_latency_ns: Some(4095),
        }
    }

    #[test]
    fn stats_order_correctly() {
        let s = SeriesStats::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 3.0); // round(1.5) = 2
        assert_eq!(s.mean, 2.5);
        assert!(SeriesStats::of(&[]).is_none());
    }

    #[test]
    fn summary_table_covers_all_series() {
        let snaps: Vec<Snapshot> = (0..10).map(|i| snap(i * 1000, i * 5, 0.5)).collect();
        let t = summary_table(&snaps);
        assert_eq!(t.len(), 4);
        let text = t.render();
        assert!(text.contains("queued cells"));
        assert!(text.contains("circuit utilization"));
    }

    #[test]
    fn empty_trace_gives_empty_table() {
        assert!(summary_table(&[]).is_empty());
    }

    #[test]
    fn timeline_csv_has_one_record_per_snapshot() {
        let snaps: Vec<Snapshot> = (0..3).map(|i| snap(i * 1000, i, 0.4)).collect();
        let csv = timeline_csv(&snaps);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("at_ns,slot,queued_cells"));
        assert!(lines[1].starts_with("0,0,0"));
    }

    #[test]
    fn snapshots_extracted_in_order() {
        let events = vec![
            TraceEvent::Snapshot(snap(0, 1, 0.1)),
            TraceEvent::Reconfiguration { at_ns: 50, slot: 0 },
            TraceEvent::Snapshot(snap(1000, 2, 0.2)),
        ];
        let snaps = snapshots_of(&events);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[1].at_ns, 1000);
    }
}
