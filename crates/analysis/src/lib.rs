//! # sorn-analysis
//!
//! Experiment drivers and reporting for the paper's evaluation:
//!
//! - [`table1`]: the Table 1 comparison (Sirius 1D ORN, Opera, 2D ORN,
//!   SORN at Nc = 64 and 32 for a 4096-rack DCN) — generation and
//!   paper-style rendering.
//! - [`fig2f`]: the Figure 2(f) throughput-vs-locality series (theory
//!   and constructed-schedule flow-level evaluation, plus packet-level
//!   validation points).
//! - [`blast`]: the §6 failure blast-radius study (flat VLB vs modular
//!   SORN).
//! - [`resilience`]: dynamic failure-storm comparison — degradation and
//!   recovery-time summaries from the engine's metrics.
//! - [`adaptation`]: the §5 reconfiguration experiment (static vs
//!   adaptive across macro-pattern shifts, with update-cost accounting).
//! - [`render`]: plain-text table rendering shared by the bench binaries.
//! - [`perfreport`]: the `BENCH_<label>.json` self-profiling report
//!   schema, with baseline comparison for perf-regression checks.
//! - [`timeseries`]: percentile summaries and CSV timelines over the
//!   JSONL run traces that `sorn-telemetry` probes produce.
//! - [`autopsy`]: tail-latency attribution tables over the causal flow
//!   traces (`--trace-flows`) — queueing vs transmission vs
//!   reconfiguration wait at p50/p99/p99.9.

#![warn(missing_docs)]

pub mod adaptation;
pub mod autopsy;
pub mod blast;
pub mod fct;
pub mod fig2f;
pub mod perfreport;
pub mod render;
pub mod resilience;
pub mod saturation;
pub mod syncdomains;
pub mod table1;
pub mod timeseries;
