//! Table 1 reproduction: latency/throughput comparison of oblivious and
//! semi-oblivious designs for a 4096-rack DCN.

use crate::render::{fmt_latency, fmt_pct, TextTable};
use sorn_core::baselines::{
    hdim_orn_row, opera_rows, sirius_1d, sorn_rows, DeploymentParams, OperaParams, SystemRow,
};
use sorn_core::model::InterCliqueLatencyModel;

/// Parameters of the Table 1 comparison.
#[derive(Debug, Clone)]
pub struct Table1Params {
    /// Shared deployment (racks, uplinks, slot, propagation).
    pub deployment: DeploymentParams,
    /// Opera's configuration.
    pub opera: OperaParams,
    /// Locality ratio for the SORN rows (paper: 0.56).
    pub locality: f64,
    /// Clique counts for the SORN rows (paper: 64 and 32).
    pub sorn_clique_counts: Vec<usize>,
    /// Which inter-clique δm variant to print.
    pub inter_model: InterCliqueLatencyModel,
}

impl Default for Table1Params {
    fn default() -> Self {
        Table1Params {
            deployment: DeploymentParams::paper_reference(),
            opera: OperaParams::paper_reference(),
            locality: 0.56,
            sorn_clique_counts: vec![64, 32],
            inter_model: InterCliqueLatencyModel::Table,
        }
    }
}

/// Generates every row of the comparison, in the paper's order.
pub fn generate(params: &Table1Params) -> Vec<SystemRow> {
    let p = &params.deployment;
    let mut rows = vec![sirius_1d(p)];
    rows.extend(opera_rows(p, &params.opera));
    if let Some(r2d) = hdim_orn_row(p, 2) {
        rows.push(r2d);
    }
    for &nc in &params.sorn_clique_counts {
        rows.extend(sorn_rows(p, nc, params.locality, params.inter_model));
    }
    rows
}

/// Renders rows in the paper's column layout.
pub fn render(rows: &[SystemRow]) -> String {
    let mut t = TextTable::new(&[
        "System",
        "Max hops",
        "delta_m",
        "Min Latency",
        "Thpt.",
        "Norm. BW cost",
    ]);
    for r in rows {
        let name = match &r.variant {
            Some(v) => format!("{} ({v})", r.system),
            None => r.system.clone(),
        };
        t.row(vec![
            name,
            r.max_hops.to_string(),
            format!("{:.0}", r.delta_m.ceil()),
            fmt_latency(r.min_latency_ns),
            fmt_pct(r.throughput),
            format!("{:.2}x", r.bw_cost),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_generates_the_papers_seven_rows() {
        let rows = generate(&Table1Params::default());
        // Sirius, Opera short, Opera bulk, 2D, SORN64 intra/inter,
        // SORN32 intra/inter = 8 rows.
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].system, "Optimal ORN 1D (Sirius)");
        assert_eq!(rows[1].variant.as_deref(), Some("short flows"));
        assert_eq!(rows[3].system, "Optimal ORN 2D");
        assert!(rows[4].system.contains("Nc=64"));
        assert!(rows[7].system.contains("Nc=32"));
    }

    #[test]
    fn rendered_table_contains_paper_values() {
        let s = render(&generate(&Table1Params::default()));
        // Spot-check the printed figures against the paper.
        assert!(s.contains("4095"), "{s}");
        assert!(s.contains("26.59 us"), "{s}");
        assert!(s.contains("252"), "{s}");
        // Exact value is 3.575 us; the paper truncates to 3.57, Rust's
        // formatter rounds to 3.58 — accept either.
        assert!(s.contains("3.57 us") || s.contains("3.58 us"), "{s}");
        assert!(s.contains("40.98%"), "{s}");
        assert!(s.contains("2.44x"), "{s}");
        assert!(s.contains("31.25%"), "{s}");
        assert!(s.contains("77"), "{s}");
        assert!(s.contains("364"), "{s}");
        assert!(s.contains("155"), "{s}");
        assert!(s.contains("296"), "{s}");
    }

    #[test]
    fn text_variant_shifts_inter_rows_only() {
        let mut p = Table1Params::default();
        p.inter_model = InterCliqueLatencyModel::Text;
        let text_rows = generate(&p);
        let table_rows = generate(&Table1Params::default());
        // Intra rows identical.
        assert_eq!(text_rows[4], table_rows[4]);
        // Inter rows larger under the Text variant.
        assert!(text_rows[5].delta_m > table_rows[5].delta_m);
    }

    #[test]
    fn latency_ordering_matches_paper_claims() {
        let rows = generate(&Table1Params::default());
        let lat = |i: usize| rows[i].min_latency_ns;
        // SORN intra (4) beats 2D ORN (3), which beats Sirius (0).
        assert!(lat(4) < lat(3));
        assert!(lat(3) < lat(0));
        // Opera bulk (2) is the worst latency of all.
        for i in [0, 1, 3, 4, 5, 6, 7] {
            assert!(lat(2) > lat(i));
        }
    }
}
