//! Failure blast radius (§6 "Practicality benefits").
//!
//! Flat oblivious designs spray every flow over every link, so any link
//! failure can touch flows between *any* source-destination pair. A
//! modular semi-oblivious design confines most paths inside cliques,
//! shrinking the set of pairs a single failure affects. This module
//! quantifies that: for each directed virtual link, the fraction of
//! source-destination pairs whose routing path-set uses the link.

use sorn_routing::PathModel;
use sorn_topology::NodeId;
use std::collections::HashMap;

/// Blast-radius statistics over all directed virtual links.
#[derive(Debug, Clone, PartialEq)]
pub struct BlastReport {
    /// Scheme name.
    pub scheme: String,
    /// Links observed in any path.
    pub links: usize,
    /// Mean over links of the fraction of pairs using the link.
    pub mean_affected: f64,
    /// Worst-case (max over links) fraction of pairs using a link.
    pub max_affected: f64,
    /// Mean over src-dst pairs of the number of distinct links whose
    /// failure can touch the pair (the pair's failure *exposure*). This
    /// is where modularity shows: a flat VLB flow is exposed to
    /// `~2(n-1)` links anywhere in the fabric, while a SORN flow is
    /// exposed only to links of its own clique(s).
    pub mean_exposure: f64,
    /// Worst-case exposure over pairs.
    pub max_exposure: usize,
}

/// Computes the blast radius of `model` over an `n`-node network: for
/// every ordered pair, mark each directed link appearing in *any* of the
/// pair's paths; report per-link affected-pair fractions.
pub fn blast_radius(n: usize, model: &dyn PathModel) -> BlastReport {
    let mut affected: HashMap<(u32, u32), u64> = HashMap::new();
    let pairs = (n * (n - 1)) as f64;
    let mut edges_of_pair: Vec<(u32, u32)> = Vec::new();
    let mut exposure_sum = 0u64;
    let mut exposure_max = 0usize;
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s == d {
                continue;
            }
            edges_of_pair.clear();
            model.for_each_path(NodeId(s), NodeId(d), &mut |path, _| {
                for w in path.windows(2) {
                    edges_of_pair.push((w[0].0, w[1].0));
                }
            });
            edges_of_pair.sort_unstable();
            edges_of_pair.dedup();
            exposure_sum += edges_of_pair.len() as u64;
            exposure_max = exposure_max.max(edges_of_pair.len());
            for &e in &edges_of_pair {
                *affected.entry(e).or_insert(0) += 1;
            }
        }
    }
    let links = affected.len();
    let mut mean = 0.0;
    let mut max = 0.0f64;
    for &c in affected.values() {
        let f = c as f64 / pairs;
        mean += f;
        max = max.max(f);
    }
    if links > 0 {
        mean /= links as f64;
    }
    BlastReport {
        scheme: model.name().to_string(),
        links,
        mean_affected: mean,
        max_affected: max,
        mean_exposure: exposure_sum as f64 / pairs,
        max_exposure: exposure_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_routing::{SornPaths, VlbPaths};
    use sorn_topology::CliqueMap;

    #[test]
    fn flat_vlb_blast_radius_is_total() {
        // With 2-hop VLB over a clique, every link is either the spray or
        // direct hop of many pairs; the worst link affects almost all
        // pairs (every pair sprays over every outgoing link of its
        // source, and every pair can use any direct link).
        let r = blast_radius(16, &VlbPaths::new(16));
        assert_eq!(r.links, 16 * 15);
        // Link (u,v) is used by: all pairs with source u (spray), all
        // pairs with destination v (direct): ~2n pairs of n(n-1).
        let expect = (2.0 * 15.0 - 1.0) / (16.0 * 15.0);
        assert!((r.max_affected - expect).abs() < 0.01, "{r:?}");
    }

    #[test]
    fn sorn_blast_radius_is_smaller() {
        let map = CliqueMap::contiguous(16, 4);
        let flat = blast_radius(16, &VlbPaths::new(16));
        let sorn = blast_radius(16, &SornPaths::new(map));
        assert!(
            sorn.mean_affected < flat.mean_affected,
            "sorn {} vs flat {}",
            sorn.mean_affected,
            flat.mean_affected
        );
        // The modularity claim of §6: each SORN flow is exposed to far
        // fewer links than a flat VLB flow.
        assert!(
            sorn.mean_exposure < flat.mean_exposure / 2.0,
            "sorn exposure {} vs flat {}",
            sorn.mean_exposure,
            flat.mean_exposure
        );
        assert!(sorn.max_exposure < flat.max_exposure);
    }

    #[test]
    fn flat_vlb_exposure_spans_the_fabric() {
        // 2-hop VLB over n nodes: a pair (s,d) can use any of the n-1
        // spray links of s and any of the n-1 direct links into d; the
        // link (s,d) appears in both sets, so exposure = 2(n-1) - 1.
        let n = 12;
        let r = blast_radius(n, &VlbPaths::new(n));
        assert_eq!(r.max_exposure, 2 * (n - 1) - 1);
        assert!((r.mean_exposure - (2.0 * (n as f64 - 1.0) - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn intra_links_affect_only_local_and_transit_pairs() {
        let map = CliqueMap::contiguous(8, 2);
        let sorn = blast_radius(8, &SornPaths::new(map));
        // SORN uses intra links (within both cliques) and inter links:
        // node 0 reaches 1,2,3 intra and 4 inter (gateway by index).
        assert!(sorn.links < 8 * 7, "SORN must not use every possible link");
    }
}
