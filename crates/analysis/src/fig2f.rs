//! Figure 2(f) reproduction: worst-case throughput vs traffic locality.
//!
//! Two series, as in the paper:
//!
//! - **Theory**: `r = 1/(3 − x)` — the closed form at the ideal
//!   oversubscription `q* = 2/(1 − x)`.
//! - **Simulated**: exact flow-level evaluation of the actually
//!   constructed 128-node / 8-clique schedule under a clique-local
//!   demand, plus an optional packet-level validation point driven by
//!   pFabric web-search traffic ("real-world traffic \[2\]").

use sorn_core::{model, CoreError, SornConfig, SornNetwork};
use sorn_sim::{Metrics, NoopProbe, Probe, SimError};
use sorn_traffic::{spatial::CliqueLocal, FlowSizeDist, PoissonWorkload};

/// One point of the Figure 2(f) series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2fPoint {
    /// Locality ratio `x`.
    pub x: f64,
    /// Theoretical `r = 1/(3 − x)`.
    pub theory: f64,
    /// Flow-level throughput of the constructed schedule.
    pub simulated: f64,
    /// Demand-weighted mean hops at this point.
    pub mean_hops: f64,
}

/// Parameters for the figure.
#[derive(Debug, Clone)]
pub struct Fig2fParams {
    /// Network size (paper: 128).
    pub n: usize,
    /// Clique count (paper: 8).
    pub cliques: usize,
    /// Locality ratios to sweep.
    pub xs: Vec<f64>,
}

impl Default for Fig2fParams {
    fn default() -> Self {
        Fig2fParams {
            n: 128,
            cliques: 8,
            xs: (0..10).map(|i| i as f64 / 10.0).collect(),
        }
    }
}

/// Generates both series.
pub fn generate(params: &Fig2fParams) -> Result<Vec<Fig2fPoint>, CoreError> {
    let mut out = Vec::with_capacity(params.xs.len());
    for &x in &params.xs {
        let mut cfg = SornConfig::small(params.n, params.cliques, x);
        // Keep schedule periods tractable across the sweep.
        cfg.q = Some(sorn_topology::Ratio::approximate(model::ideal_q(x), 64));
        let net = SornNetwork::build(cfg)?;
        let rep = net.flow_throughput(x)?;
        out.push(Fig2fPoint {
            x,
            theory: model::optimal_throughput(x),
            simulated: rep.throughput,
            mean_hops: rep.mean_hops,
        });
    }
    Ok(out)
}

/// Result of a packet-level validation run at one locality point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketValidation {
    /// Locality ratio simulated.
    pub x: f64,
    /// Offered load (fraction of node bandwidth).
    pub offered_load: f64,
    /// Whether all traffic drained within the slot budget.
    pub drained: bool,
    /// Mean hops per delivered cell.
    pub mean_hops: f64,
    /// Fraction of transmissions that were final-hop deliveries.
    pub delivery_fraction: f64,
    /// Flows completed.
    pub flows: usize,
}

/// Packet-simulates one Figure 2(f) point with pFabric web-search flows
/// at the given offered load, checking that a load below the predicted
/// throughput drains. `engine_threads` shards the engine's slot phases
/// (`1` = serial path; any value is bit-identical).
#[allow(clippy::too_many_arguments)]
pub fn validate_point(
    n: usize,
    cliques: usize,
    x: f64,
    load: f64,
    duration_ns: u64,
    seed: u64,
    engine_threads: usize,
) -> Result<PacketValidation, SimError> {
    validate_point_traced(
        n,
        cliques,
        x,
        load,
        duration_ns,
        seed,
        engine_threads,
        NoopProbe,
    )
    .map(|(v, _, _)| v)
}

/// Like [`validate_point`], but with a telemetry probe observing the
/// packet run; returns the full run metrics and the probe alongside the
/// validation summary, so callers can cross-check a written trace
/// against the aggregate counters.
#[allow(clippy::too_many_arguments)]
pub fn validate_point_traced<P: Probe>(
    n: usize,
    cliques: usize,
    x: f64,
    load: f64,
    duration_ns: u64,
    seed: u64,
    engine_threads: usize,
    probe: P,
) -> Result<(PacketValidation, Metrics, P), SimError> {
    let mut cfg = SornConfig::small(n, cliques, x);
    cfg.q = Some(sorn_topology::Ratio::approximate(model::ideal_q(x), 64));
    cfg.engine_threads = engine_threads;
    let net = SornNetwork::build(cfg).expect("valid point config");
    let map = net.cliques().clone();

    // One uplink at the default cell size: 12.5 B/ns line rate.
    let wl = PoissonWorkload {
        n,
        load,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns,
        seed,
    };
    let flows = wl.generate(&FlowSizeDist::web_search(), &CliqueLocal::new(map, x));
    let n_flows = flows.len();
    // Generous drain budget: 50x the workload duration.
    let max_slots = duration_ns / 100 * 50;
    let (metrics, drained, probe) = net.simulate_with_probe(flows, seed, max_slots, probe)?;
    let validation = PacketValidation {
        x,
        offered_load: load,
        drained,
        mean_hops: metrics.mean_hops(),
        delivery_fraction: metrics.delivery_fraction(),
        flows: n_flows.min(metrics.flows.len()),
    };
    Ok((validation, metrics, probe))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_matches_theory_shape() {
        // Smaller instance for test speed; same structure as the paper's.
        let params = Fig2fParams {
            n: 32,
            cliques: 4,
            xs: vec![0.0, 0.25, 0.5, 0.75],
        };
        let pts = generate(&params).unwrap();
        assert_eq!(pts.len(), 4);
        for p in &pts {
            // Simulated (exact) throughput is at or above the worst-case
            // closed form, and within a sensible band of it.
            assert!(
                p.simulated >= p.theory - 1e-9,
                "x={}: sim {} < theory {}",
                p.x,
                p.simulated,
                p.theory
            );
            assert!(
                p.simulated < p.theory + 0.12,
                "x={}: sim {}",
                p.x,
                p.simulated
            );
            // Bandwidth tax shrinks with locality.
            assert!(p.mean_hops <= 3.0 - p.x + 1e-9);
        }
        // Monotone increasing in x, bounded by [1/3, 1/2] as the paper
        // highlights.
        for w in pts.windows(2) {
            assert!(w[1].simulated >= w[0].simulated - 1e-9);
        }
        assert!(pts[0].theory >= 1.0 / 3.0 - 1e-12);
        assert!(pts.last().unwrap().theory <= 0.5);
    }

    #[test]
    fn packet_validation_drains_below_capacity() {
        let v = validate_point(16, 4, 0.5, 0.2, 200_000, 7, 1).unwrap();
        // The sharded engine must reproduce the serial run bit-for-bit.
        assert_eq!(validate_point(16, 4, 0.5, 0.2, 200_000, 7, 2).unwrap(), v);
        assert!(v.drained, "load 0.2 below r=0.4 must drain: {v:?}");
        assert!(v.flows > 0);
        assert!(v.mean_hops > 1.0 && v.mean_hops <= 3.0);
        // Delivery fraction ~ 1/mean_hops.
        assert!((v.delivery_fraction * v.mean_hops - 1.0).abs() < 0.05);
    }
}
