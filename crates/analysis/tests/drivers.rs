//! Integration tests for the analysis experiment drivers — exercising
//! them the way the bench binaries do, with assertions on the shapes the
//! paper claims.

use sorn_analysis::adaptation;
use sorn_analysis::blast::blast_radius;
use sorn_analysis::fct::{bucketed_slowdown, ideal_fct_ns, DEFAULT_BUCKETS};
use sorn_analysis::saturation::{find_saturation, LoadedWorkload};
use sorn_analysis::syncdomains::{flat_sync, sorn_sync, SyncModel};
use sorn_analysis::table1::{generate, Table1Params};
use sorn_control::ControlConfig;
use sorn_routing::{SornPaths, SornRouter, VlbPaths};
use sorn_sim::{Flow, FlowId, SimConfig};
use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
use sorn_topology::{CliqueMap, NodeId, Ratio};

#[test]
fn blast_radius_shrinks_monotonically_with_clique_count() {
    let n = 64;
    let mut last = blast_radius(n, &VlbPaths::new(n)).mean_exposure;
    for nc in [4usize, 8, 16] {
        let r = blast_radius(n, &SornPaths::new(CliqueMap::contiguous(n, nc)));
        assert!(
            r.mean_exposure < last,
            "Nc={nc}: exposure {} did not shrink from {last}",
            r.mean_exposure
        );
        last = r.mean_exposure;
    }
}

#[test]
fn sync_efficiency_improves_monotonically_with_modularity() {
    let m = SyncModel::default();
    let mut last = flat_sync(4096, &m).efficiency;
    for nc in [16usize, 32, 64, 128] {
        let s = sorn_sync(4096, nc, 4.0, &m);
        assert!(s.efficiency > last, "Nc={nc}");
        last = s.efficiency;
    }
}

#[test]
fn table1_is_internally_consistent() {
    // Throughput and BW cost are reciprocals in every row; latency is
    // monotone in delta_m for rows sharing slot time.
    let rows = generate(&Table1Params::default());
    for r in &rows {
        assert!(
            (r.throughput * r.bw_cost - 1.0).abs() < 1e-6,
            "{}: thpt {} x bw {} != 1",
            r.system,
            r.throughput,
            r.bw_cost
        );
        assert!(r.min_latency_ns > 0.0);
    }
}

/// Deterministic clique-local single-cell workload.
struct TestWorkload {
    map: CliqueMap,
    duration_ns: u64,
}

impl LoadedWorkload for TestWorkload {
    fn flows_at(&self, load: f64) -> Vec<Flow> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use sorn_traffic::spatial::{CliqueLocal, SpatialModel};
        let mut rng = StdRng::seed_from_u64(5);
        let spatial = CliqueLocal::new(self.map.clone(), 0.5);
        let slots = self.duration_ns / 100;
        let mut flows = Vec::new();
        let mut id = 0u64;
        for s in 0..self.map.n() as u32 {
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen::<f64>().max(1e-300);
                t += -u.ln() / load;
                if t as u64 >= slots {
                    break;
                }
                flows.push(Flow {
                    id: FlowId(id),
                    src: NodeId(s),
                    dst: spatial.pick_dst(NodeId(s), &mut rng),
                    size_bytes: 1250,
                    arrival_ns: (t as u64) * 100,
                });
                id += 1;
            }
        }
        flows.sort_by_key(|f| f.arrival_ns);
        flows
    }
    fn duration_ns(&self) -> u64 {
        self.duration_ns
    }
}

#[test]
fn sorn_saturation_brackets_the_model_prediction() {
    // x = 0.5 => r* = 0.4; the measured saturation must land near it.
    let map = CliqueMap::contiguous(16, 4);
    let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(4))).unwrap();
    let router = SornRouter::new(map.clone());
    let wl = TestWorkload {
        map,
        duration_ns: 300_000,
    };
    let res = find_saturation(&sched, &router, SimConfig::default(), &wl, 0.15, 0.9, 4, 60);
    assert!(
        res.stable_load > 0.25 && res.stable_load < 0.55,
        "saturation {} far from the r* = 0.4 prediction",
        res.stable_load
    );
    assert!(res.unstable_load.is_some());
}

#[test]
fn slowdown_buckets_cover_all_flows() {
    let cfg = SimConfig::default();
    let flows: Vec<sorn_sim::FlowRecord> = (0..50)
        .map(|i| sorn_sim::FlowRecord {
            id: FlowId(i),
            size_bytes: 500 * (i + 1),
            arrival_ns: 0,
            completion_ns: ideal_fct_ns(500 * (i + 1), &cfg) * 2,
            max_hops: 2,
        })
        .collect();
    let buckets = bucketed_slowdown(&flows, &cfg, &DEFAULT_BUCKETS);
    let total: usize = buckets.iter().map(|b| b.flows).sum();
    assert_eq!(total, 50);
    for b in buckets.iter().filter(|b| b.flows > 0) {
        // Every flow was built with exactly 2x slowdown.
        assert!((b.mean_slowdown - 2.0).abs() < 1e-9, "{b:?}");
    }
}

#[test]
fn adaptation_driver_respects_no_lookahead() {
    // Epoch 0's adaptive score must equal the static score (both start
    // from the same configuration; the loop cannot see epoch 0's traffic
    // before scoring it).
    let n = 16;
    let mut flows = Vec::new();
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s != d {
                flows.push(Flow {
                    id: FlowId(0),
                    src: NodeId(s),
                    dst: NodeId(d),
                    size_bytes: if s % 4 == d % 4 { 9_000 } else { 300 },
                    arrival_ns: 0,
                });
            }
        }
    }
    let mut cfg = ControlConfig::default();
    cfg.allowed_sizes = vec![4];
    cfg.alpha = 1.0;
    let epochs = adaptation::run(n, 4, Ratio::integer(2), cfg, &[(2, flows)]).unwrap();
    assert_eq!(epochs.len(), 2);
    assert!(
        (epochs[0].adaptive_throughput - epochs[0].static_throughput).abs() < 1e-12,
        "epoch 0 must not benefit from lookahead"
    );
    assert!(epochs[1].adaptive_throughput >= epochs[0].adaptive_throughput);
}
